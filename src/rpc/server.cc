#include "rpc/server.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "api/command.h"
#include "api/service.h"
#include "replication/group.h"
#include "util/codec.h"

namespace fb {
namespace rpc {

namespace {

// epoll user-data ids for the two non-connection fds.
constexpr uint64_t kWakeId = UINT64_MAX;
constexpr uint64_t kListenId = UINT64_MAX - 1;

// iovec fan-in per sendmsg: enough to batch a deep pipeline's replies
// into one syscall without building unbounded iovec arrays.
constexpr int kMaxIov = 64;

}  // namespace

thread_local bool ForkBaseServer::defer_flush_ = false;

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ForkBaseServer>> ForkBaseServer::Start(
    ForkBase* engine, ServerOptions options) {
  if (options.num_workers == 0) options.num_workers = 1;
  if (options.max_queued_requests == 0) options.max_queued_requests = 1;
  if (options.max_protocol_errors == 0) options.max_protocol_errors = 1;
  FB_ASSIGN_OR_RETURN(Endpoint ep, Endpoint::Parse(options.listen));
  std::unique_ptr<ForkBaseServer> server(
      new ForkBaseServer(engine, std::move(options)));
  FB_ASSIGN_OR_RETURN(server->listener_, Listener::Listen(ep));
  server->endpoint_ = server->listener_.bound_endpoint();

  const int lflags = ::fcntl(server->listener_.fd(), F_GETFL, 0);
  if (lflags < 0 ||
      ::fcntl(server->listener_.fd(), F_SETFL, lflags | O_NONBLOCK) != 0) {
    return Status::IOError("fcntl listener O_NONBLOCK: " +
                           std::string(std::strerror(errno)));
  }
  server->epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (server->epfd_ < 0) {
    return Status::IOError("epoll_create1: " +
                           std::string(std::strerror(errno)));
  }
  server->wakefd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (server->wakefd_ < 0) {
    return Status::IOError("eventfd: " + std::string(std::strerror(errno)));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  if (::epoll_ctl(server->epfd_, EPOLL_CTL_ADD, server->listener_.fd(), &ev) !=
      0) {
    return Status::IOError("epoll_ctl add listener: " +
                           std::string(std::strerror(errno)));
  }
  ev.data.u64 = kWakeId;
  if (::epoll_ctl(server->epfd_, EPOLL_CTL_ADD, server->wakefd_, &ev) != 0) {
    return Status::IOError("epoll_ctl add eventfd: " +
                           std::string(std::strerror(errno)));
  }

  server->loop_thread_ = std::thread([s = server.get()] { s->EventLoop(); });
  server->workers_.reserve(server->options_.num_workers);
  for (size_t i = 0; i < server->options_.num_workers; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  return server;
}

ForkBaseServer::~ForkBaseServer() { Stop(); }

void ForkBaseServer::Stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true);
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    MutexLock lock(queue_mu_);
  }
  queue_cv_.SignalAll();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  listener_.Close();
  if (epfd_ >= 0) {
    ::close(epfd_);
    epfd_ = -1;
  }
  if (wakefd_ >= 0) {
    ::close(wakefd_);
    wakefd_ = -1;
  }
}

ForkBaseServer::Stats ForkBaseServer::stats() const {
  Stats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return s;
}

void ForkBaseServer::WakeLoop() {
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t w = ::write(wakefd_, &one, sizeof(one));
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void ForkBaseServer::EventLoop() {
  epoll_event events[64];
  while (!stopping_.load()) {
    const int n = ::epoll_wait(epfd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kWakeId) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(wakefd_, &drained, sizeof(drained));
        continue;
      }
      if (id == kListenId) {
        AcceptReady();
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // reaped earlier in this batch
      std::shared_ptr<Conn> conn = it->second;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        CloseConn(conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) {
        bool alive;
        {
          MutexLock lock(conn->mu);
          alive = conn->closing ? false : FlushLocked(conn.get());
        }
        if (!alive) {
          CloseConn(conn);
          continue;
        }
      }
      if (events[i].events & (EPOLLIN | EPOLLRDHUP)) {
        ReadReady(conn);
      }
    }
    if (abort_count_.exchange(0, std::memory_order_acq_rel) > 0) {
      ReapClosing();
    }
    RetryStalled();
  }
  // Teardown: every connection is shut down and dropped here, on the
  // loop, so no other thread ever touches the registry.
  for (auto& [id, conn] : conns_) {
    MutexLock lock(conn->mu);
    conn->closing = true;
    conn->sock.Shutdown();
  }
  conns_.clear();
}

void ForkBaseServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or transient failure; epoll re-arms
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(Socket(fd));
    if (!conn->sock.SetNonBlocking().ok()) continue;  // drops the socket
    conn->id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, conn->sock.fd(), &ev) != 0) {
      continue;  // drops the socket
    }
    conns_.emplace(conn->id, std::move(conn));
    connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ForkBaseServer::ReadReady(const std::shared_ptr<Conn>& conn) {
  if (conn->reaped || conn->stalled) return;
  constexpr size_t kReadChunk = 64u << 10;
  for (;;) {
    const size_t old = conn->rbuf.size();
    conn->rbuf.resize(old + kReadChunk);
    const ssize_t r =
        ::recv(conn->sock.fd(), conn->rbuf.data() + old, kReadChunk, 0);
    if (r > 0) {
      conn->rbuf.resize(old + static_cast<size_t>(r));
      ParseFrames(conn);
      if (conn->reaped || conn->stalled) return;
      if (static_cast<size_t>(r) < kReadChunk) return;  // likely drained
      continue;
    }
    conn->rbuf.resize(old);
    if (r == 0) {
      CloseConn(conn);  // clean EOF
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConn(conn);
    return;
  }
}

void ForkBaseServer::ParseFrames(const std::shared_ptr<Conn>& conn) {
  while (!conn->reaped && !conn->stalled) {
    Frame frame;
    size_t consumed = 0;
    const Status s =
        DecodeFrameFromBuffer(conn->rbuf.data() + conn->rpos,
                              conn->rbuf.size() - conn->rpos, &frame,
                              &consumed);
    conn->rpos += consumed;
    if (s.ok()) {
      if (consumed == 0) break;  // need more bytes
      HandleFrame(conn, std::move(frame));
      continue;
    }
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    ++conn->protocol_errors;
    QueueControl(conn, frame.request_id, s, Slice());
    if (s.IsInvalidArgument() ||
        conn->protocol_errors >= options_.max_protocol_errors) {
      // Oversized length prefix (framing lost) or a client that keeps
      // producing damage: best-effort error reply, then the connection
      // is done.
      CloseConnAfterFlush(conn);
      return;
    }
    // Corruption with a sane length: the boundary held, keep decoding.
  }
  // Compact the consumed prefix so a long-lived connection's buffer
  // does not grow without bound.
  if (conn->rpos == conn->rbuf.size()) {
    conn->rbuf.clear();
    conn->rpos = 0;
  } else if (conn->rpos > (1u << 20)) {
    conn->rbuf.erase(conn->rbuf.begin(),
                     conn->rbuf.begin() + static_cast<ptrdiff_t>(conn->rpos));
    conn->rpos = 0;
  }
}

void ForkBaseServer::HandleFrame(const std::shared_ptr<Conn>& conn,
                                 Frame frame) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  switch (frame.type) {
    case FrameType::kChunkPeerGet:
    case FrameType::kChunkPeerGetBatch:
      // Served inline (see ServePeerGet): local-store lookups that must
      // not wait behind — or for — the worker pool.
      ServePeerGet(conn, frame);
      return;
    case FrameType::kReply:
    case FrameType::kControlResp: {
      // A client must never send response frames; a bounded number are
      // answered with an error, then the connection is closed — a
      // hostile client cannot loop on free error replies.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      ++conn->protocol_errors;
      QueueControl(conn, frame.request_id,
                   Status::InvalidArgument("unexpected response frame"),
                   Slice());
      if (conn->protocol_errors >= options_.max_protocol_errors) {
        CloseConnAfterFlush(conn);
      }
      return;
    }
    default:
      break;
  }
  bool queued = false;
  {
    MutexLock lock(queue_mu_);
    if (queue_.size() < options_.max_queued_requests) {
      queue_.push_back(WorkItem{conn, std::move(frame)});
      queued = true;
    }
  }
  if (queued) {
    queue_cv_.Signal();
    return;
  }
  // Backpressure: the dispatch queue is full. Park the frame, stop
  // reading this connection (the kernel's flow control throttles the
  // client), and let a draining worker wake the loop to resume.
  conn->stalled = true;
  conn->pending_frame = std::move(frame);
  stall_count_.fetch_add(1, std::memory_order_release);
  MutexLock lock(conn->mu);
  if (!conn->closing) {
    conn->read_off = true;
    RearmLocked(conn.get());
  }
}

void ForkBaseServer::RetryStalled() {
  if (stall_count_.load(std::memory_order_acquire) == 0) return;
  std::vector<std::shared_ptr<Conn>> stalled;
  for (auto& [id, conn] : conns_) {
    if (conn->stalled) stalled.push_back(conn);
  }
  for (auto& conn : stalled) {
    bool queued = false;
    {
      MutexLock lock(queue_mu_);
      if (queue_.size() < options_.max_queued_requests) {
        queue_.push_back(WorkItem{conn, std::move(conn->pending_frame)});
        queued = true;
      }
    }
    if (!queued) return;  // still full; everyone stays parked
    queue_cv_.Signal();
    conn->stalled = false;
    stall_count_.fetch_sub(1, std::memory_order_release);
    {
      MutexLock lock(conn->mu);
      if (!conn->closing) {
        conn->read_off = false;
        RearmLocked(conn.get());
      }
    }
    // Keep working through the backlog this connection buffered while
    // parked (it may immediately re-stall).
    ParseFrames(conn);
  }
}

void ForkBaseServer::ReapClosing() {
  std::vector<std::shared_ptr<Conn>> dead;
  for (auto& [id, conn] : conns_) {
    bool closing;
    {
      MutexLock lock(conn->mu);
      closing = conn->closing;
    }
    if (closing) dead.push_back(conn);
  }
  for (auto& conn : dead) CloseConn(conn);
}

void ForkBaseServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (conn->reaped) return;
  conn->reaped = true;
  {
    MutexLock lock(conn->mu);
    conn->closing = true;
  }
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, conn->sock.fd(), nullptr);
  if (conn->stalled) {
    conn->stalled = false;
    stall_count_.fetch_sub(1, std::memory_order_release);
  }
  conn->sock.Shutdown();
  // The fd itself closes when the last reference (possibly a WorkItem
  // still in flight) drops — after the epoll DEL above, so a recycled
  // fd number can never alias a registered interest.
  conns_.erase(conn->id);
}

void ForkBaseServer::CloseConnAfterFlush(const std::shared_ptr<Conn>& conn) {
  {
    MutexLock lock(conn->mu);
    if (!conn->closing) FlushLocked(conn.get());
  }
  CloseConn(conn);
}

// ---------------------------------------------------------------------------
// Write side
// ---------------------------------------------------------------------------

void ForkBaseServer::RearmLocked(Conn* conn) {
  if (conn->closing) return;
  epoll_event ev{};
  ev.events = EPOLLRDHUP;
  if (!conn->read_off) ev.events |= EPOLLIN;
  if (conn->want_write) ev.events |= EPOLLOUT;
  ev.data.u64 = conn->id;
  ::epoll_ctl(epfd_, EPOLL_CTL_MOD, conn->sock.fd(), &ev);
}

void ForkBaseServer::AbortLocked(Conn* conn) {
  if (conn->closing) return;
  conn->closing = true;
  conn->sock.Shutdown();
  abort_count_.fetch_add(1, std::memory_order_release);
  WakeLoop();
}

bool ForkBaseServer::FlushLocked(Conn* conn) {
  while (!conn->outq.empty()) {
    iovec iov[kMaxIov];
    int niov = 0;
    size_t skip = conn->front_sent;
    for (const Bytes& b : conn->outq) {
      if (niov == kMaxIov) break;
      iov[niov].iov_base = const_cast<uint8_t*>(b.data()) + skip;
      iov[niov].iov_len = b.size() - skip;
      ++niov;
      skip = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(niov);
    const ssize_t w = ::sendmsg(conn->sock.fd(), &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->want_write) {
          conn->want_write = true;
          RearmLocked(conn);
        }
        return true;
      }
      AbortLocked(conn);
      return false;
    }
    size_t sent = static_cast<size_t>(w);
    conn->outq_bytes -= sent;
    while (sent > 0) {
      Bytes& front = conn->outq.front();
      const size_t avail = front.size() - conn->front_sent;
      if (sent >= avail) {
        sent -= avail;
        conn->front_sent = 0;
        conn->outq.pop_front();
      } else {
        conn->front_sent += sent;
        sent = 0;
      }
    }
  }
  if (conn->want_write) {
    conn->want_write = false;
    RearmLocked(conn);
  }
  return true;
}

void ForkBaseServer::QueueWrite(const std::shared_ptr<Conn>& conn,
                                Bytes wire) {
  MutexLock lock(conn->mu);
  if (conn->closing) return;  // dead connection; the reply has no reader
  conn->outq_bytes += wire.size();
  conn->outq.push_back(std::move(wire));
  if (conn->outq_bytes > options_.max_output_buffer_bytes) {
    // The client stopped reading. The loop never blocks on a send, so
    // the only protection against unbounded buffering is to cut the
    // connection loose.
    AbortLocked(conn.get());
    return;
  }
  if (!defer_flush_) FlushLocked(conn.get());
}

void ForkBaseServer::FlushConn(const std::shared_ptr<Conn>& conn) {
  MutexLock lock(conn->mu);
  if (conn->closing || conn->outq.empty()) return;
  FlushLocked(conn.get());
}

void ForkBaseServer::QueueControl(const std::shared_ptr<Conn>& conn,
                                  uint64_t request_id, const Status& s,
                                  Slice body) {
  Bytes payload;
  EncodeControl(s, body, &payload);
  Bytes wire;
  wire.reserve(kFrameHeaderSize + payload.size());
  EncodeFrame(FrameType::kControlResp, request_id, Slice(payload), &wire);
  QueueWrite(conn, std::move(wire));
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void ForkBaseServer::ServePeerGet(const std::shared_ptr<Conn>& conn,
                                  const Frame& frame) {
  const Slice payload(frame.payload);
  ChunkStore* store = options_.local_chunk_store != nullptr
                          ? options_.local_chunk_store
                          : engine_->store();
  if (frame.type == FrameType::kChunkPeerGet) {
    if (payload.size() != Hash::kSize) {
      QueueControl(conn, frame.request_id,
                   Status::InvalidArgument("peer chunk get wants one cid"),
                   Slice());
      return;
    }
    Sha256::Digest d;
    std::memcpy(d.data(), payload.data(), Hash::kSize);
    Chunk chunk;
    const Status s = store->Get(Hash(d), &chunk);
    const Bytes body = s.ok() ? chunk.Serialize() : Bytes();
    QueueControl(conn, frame.request_id, s, Slice(body));
    return;
  }
  // Batched form: per-cid present flags, absence at this store is part
  // of the answer (the resolver asks the next peer for the leftovers).
  std::vector<Hash> cids;
  Status s = DecodeCidList(payload, &cids);
  if (!s.ok()) {
    QueueControl(conn, frame.request_id, s, Slice());
    return;
  }
  std::vector<Chunk> chunks(cids.size());
  std::vector<bool> present(cids.size(), false);
  for (size_t i = 0; i < cids.size(); ++i) {
    const Status got = store->Get(cids[i], &chunks[i]);
    if (got.ok()) {
      present[i] = true;
    } else if (!got.IsNotFound()) {
      QueueControl(conn, frame.request_id, got, Slice());
      return;
    }
  }
  Bytes body;
  EncodeChunkBatchReply(chunks, present, &body);
  QueueControl(conn, frame.request_id, Status::OK(), Slice(body));
}

void ForkBaseServer::WorkerLoop() {
  std::vector<WorkItem> batch;
  batch.reserve(kWorkerBatch);
  for (;;) {
    {
      MutexLock lock(queue_mu_);
      while (!stopping_.load() && queue_.empty()) queue_cv_.Wait(queue_mu_);
      if (queue_.empty()) {
        if (stopping_.load()) return;
        continue;
      }
      while (!queue_.empty() && batch.size() < kWorkerBatch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    // A connection may be parked on the bound we just drained below.
    if (stall_count_.load(std::memory_order_acquire) > 0) WakeLoop();
    // Responses queue without flushing while the batch runs, then each
    // touched connection flushes once: one sendmsg per batch per
    // connection, not per frame.
    defer_flush_ = true;
    for (const WorkItem& item : batch) Dispatch(item);
    defer_flush_ = false;
    for (size_t i = 0; i < batch.size(); ++i) {
      bool seen = false;
      for (size_t j = 0; j < i; ++j) {
        if (batch[j].conn == batch[i].conn) {
          seen = true;
          break;
        }
      }
      if (!seen) FlushConn(batch[i].conn);
    }
    batch.clear();
  }
}

void ForkBaseServer::Dispatch(const WorkItem& item) {
  const uint64_t id = item.frame.request_id;
  const std::shared_ptr<Conn>& conn = item.conn;
  const Slice payload(item.frame.payload);

  switch (item.frame.type) {
    case FrameType::kCommand: {
      Result<Command> cmd = Command::Parse(payload);
      Reply reply = cmd.ok() ? Reply() : Reply::FromStatus(cmd.status());
      if (cmd.ok()) {
        repl::ReplicaGroup* g =
            replication_.load(std::memory_order_acquire);
        if (g != nullptr && g->role() == repl::Role::kFollower &&
            CommandMutates(cmd->op)) {
          // Followers serve reads locally; writes go to the leader. The
          // hint lets the client swap its primary without a re-probe.
          reply = Reply::FromStatus(Status::Unavailable(
              "not leader; leader=" + g->leader_endpoint()));
        } else {
          reply = ApplyCommand(engine_, *cmd);
        }
      }
      const Bytes body = reply.Serialize();
      Bytes wire;
      wire.reserve(kFrameHeaderSize + body.size());
      EncodeFrame(FrameType::kReply, id, Slice(body), &wire);
      QueueWrite(conn, std::move(wire));
      return;
    }
    case FrameType::kChunkGet: {
      if (payload.size() != Hash::kSize) {
        QueueControl(conn, id,
                     Status::InvalidArgument("chunk get wants one cid"),
                     Slice());
        return;
      }
      Sha256::Digest d;
      std::memcpy(d.data(), payload.data(), Hash::kSize);
      Chunk chunk;
      const Status s = engine_->store()->Get(Hash(d), &chunk);
      const Bytes body = s.ok() ? chunk.Serialize() : Bytes();
      QueueControl(conn, id, s, Slice(body));
      return;
    }
    case FrameType::kChunkGetBatch: {
      std::vector<Hash> cids;
      Status s = DecodeCidList(payload, &cids);
      if (!s.ok()) {
        QueueControl(conn, id, s, Slice());
        return;
      }
      std::vector<Chunk> chunks(cids.size());
      std::vector<bool> present(cids.size(), false);
      for (size_t i = 0; i < cids.size(); ++i) {
        const Status got = engine_->store()->Get(cids[i], &chunks[i]);
        if (got.ok()) {
          present[i] = true;
        } else if (!got.IsNotFound()) {
          // Unavailable & co. poison the whole batch: per-cid flags can
          // only express proven absence.
          QueueControl(conn, id, got, Slice());
          return;
        }
      }
      Bytes body;
      EncodeChunkBatchReply(chunks, present, &body);
      QueueControl(conn, id, Status::OK(), Slice(body));
      return;
    }
    case FrameType::kChunkPut: {
      if (payload.size() <= Hash::kSize) {
        QueueControl(conn, id,
                     Status::InvalidArgument("chunk put wants cid+bytes"),
                     Slice());
        return;
      }
      Sha256::Digest d;
      std::memcpy(d.data(), payload.data(), Hash::kSize);
      Chunk chunk;
      if (!Chunk::Deserialize(payload.subslice(Hash::kSize), &chunk)) {
        QueueControl(conn, id, Status::Corruption("undecodable chunk"),
                     Slice());
        return;
      }
      QueueControl(conn, id, engine_->store()->Put(Hash(d), chunk), Slice());
      return;
    }
    case FrameType::kChunkPutBatch: {
      ByteReader r(payload);
      uint64_t n = 0;
      Status s = r.ReadVarint64(&n);
      ChunkBatch batch;
      if (s.ok() && n > r.remaining() / (Hash::kSize + 1)) {
        s = Status::Corruption("chunk batch length exceeds payload");
      }
      for (uint64_t i = 0; s.ok() && i < n; ++i) {
        Slice raw;
        s = r.ReadRaw(Hash::kSize, &raw);
        if (!s.ok()) break;
        Sha256::Digest d;
        std::memcpy(d.data(), raw.data(), Hash::kSize);
        Slice bytes;
        s = r.ReadLengthPrefixed(&bytes);
        if (!s.ok()) break;
        Chunk chunk;
        if (!Chunk::Deserialize(bytes, &chunk)) {
          s = Status::Corruption("undecodable chunk in batch");
          break;
        }
        batch.emplace_back(Hash(d), std::move(chunk));
      }
      if (s.ok() && !r.AtEnd()) {
        s = Status::Corruption("trailing bytes in chunk batch");
      }
      if (s.ok()) s = engine_->store()->PutBatch(batch);
      QueueControl(conn, id, s, Slice());
      return;
    }
    case FrameType::kChunkHas: {
      if (payload.size() != Hash::kSize) {
        QueueControl(conn, id,
                     Status::InvalidArgument("chunk has wants one cid"),
                     Slice());
        return;
      }
      Sha256::Digest d;
      std::memcpy(d.data(), payload.data(), Hash::kSize);
      const uint8_t present = engine_->store()->Contains(Hash(d)) ? 1 : 0;
      QueueControl(conn, id, Status::OK(), Slice(&present, 1));
      return;
    }
    case FrameType::kHello: {
      Bytes body;
      HelloReplInfo info;
      if (repl::ReplicaGroup* g =
              replication_.load(std::memory_order_acquire)) {
        const repl::GroupStatus st = g->Snapshot();
        info.has_group = true;
        info.role = st.role;
        info.epoch = st.epoch;
        info.leader = st.leader;
      }
      EncodeHello(engine_->tree_config(), options_.peer_count, info, &body);
      QueueControl(conn, id, Status::OK(), Slice(body));
      return;
    }
    case FrameType::kStoreStats: {
      Bytes body;
      EncodeStoreStats(engine_->store()->stats(), &body);
      QueueControl(conn, id, Status::OK(), Slice(body));
      return;
    }
    case FrameType::kChunkPeerGet:
    case FrameType::kChunkPeerGetBatch:
      // Normally served inline on the event loop; answer here too so
      // the op works regardless of which path a frame took.
      ServePeerGet(conn, item.frame);
      return;
    case FrameType::kReplAppend:
    case FrameType::kReplSnapshot:
    case FrameType::kReplStatus: {
      repl::ReplicaGroup* g = replication_.load(std::memory_order_acquire);
      if (g == nullptr) {
        QueueControl(conn, id,
                     Status::InvalidArgument("replication not enabled"),
                     Slice());
        return;
      }
      Bytes body;
      Status s;
      if (item.frame.type == FrameType::kReplAppend) {
        s = g->HandleAppend(payload, &body);
      } else if (item.frame.type == FrameType::kReplSnapshot) {
        s = g->HandleSnapshot(payload, &body);
      } else {
        s = g->HandleStatus(payload, &body);
      }
      QueueControl(conn, id, s, Slice(body));
      return;
    }
    case FrameType::kReply:
    case FrameType::kControlResp:
      // Filtered on the event loop (HandleFrame) before dispatch.
      QueueControl(conn, id,
                   Status::InvalidArgument("unexpected response frame"),
                   Slice());
      return;
  }
}

}  // namespace rpc
}  // namespace fb
