// RemoteService: a ForkBaseService over a socket connection to a
// ForkBaseServer — the client half of the RPC transport.
//
// Every typed M1-M17 wrapper works unchanged: Execute serializes the
// Command into a frame, ships it, and parses the Reply frame that comes
// back. Submit() is the pipelined path: many requests may be in flight
// on one connection, each tagged with a request id, and the per-
// connection reader thread completes futures in whatever order the
// server's worker pool finishes them.
//
// A small connection pool (RemoteServiceOptions::pool_size) spreads
// concurrent callers over independent sockets; a connection that dies
// (server restart, mid-stream disconnect) fails its in-flight requests
// with IOError and is transparently replaced on the next call.
//
// Client-side value construction (CreateBlob & co., Figure 4) works
// against store(): a RemoteChunkStore that moves cid-addressed chunks
// over the same connections, with the server's TreeConfig fetched at
// connect time so client-built POS-Trees produce byte-identical cids.

#ifndef FORKBASE_RPC_REMOTE_SERVICE_H_
#define FORKBASE_RPC_REMOTE_SERVICE_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/service.h"
#include "chunk/chunk_cache.h"
#include "rpc/frame.h"
#include "rpc/socket.h"
#include "util/mutex.h"

namespace fb {
namespace rpc {

class RemoteService;

// The client's view of the remote chunk store. Thread-safe (the
// underlying connections are). An optional client-side LRU cache sits
// in front of the wire: chunks are immutable and content-addressed, so
// a cached copy can never go stale, and a re-read of a chunk this
// client already pulled (or just wrote) costs no round trip at all.
class RemoteChunkStore : public ChunkStore {
 public:
  RemoteChunkStore(RemoteService* service, size_t cache_bytes)
      : service_(service),
        cache_(cache_bytes > 0 ? std::make_unique<LruChunkCache>(cache_bytes)
                               : nullptr) {}

  using ChunkStore::Put;
  Status Put(const Hash& cid, const Chunk& chunk) override;
  Status Get(const Hash& cid, Chunk* chunk) const override;
  bool Contains(const Hash& cid) const override;
  Status PutBatch(const ChunkBatch& batch) override;
  // One kChunkGetBatch round trip for every cid the cache cannot serve.
  Status GetBatch(const std::vector<Hash>& cids,
                  std::vector<Chunk>* chunks) const override;
  // Server-side counters, with this client's cache hits/misses folded
  // into cache_hits/cache_misses.
  ChunkStoreStats stats() const override;

 private:
  RemoteService* service_;
  const std::unique_ptr<LruChunkCache> cache_;
};

struct RemoteServiceOptions {
  size_t pool_size = 2;  // concurrent sockets to the server
  // Byte budget of the client-side chunk cache (0 disables it).
  size_t chunk_cache_bytes = LruChunkCache::kDefaultCapacityBytes;
};

class RemoteService : public ForkBaseService {
 public:
  // Connects and fetches the server's TreeConfig (the handshake that
  // keeps client-side chunking byte-identical to the server's).
  static Result<std::unique_ptr<RemoteService>> Connect(
      const std::string& endpoint, RemoteServiceOptions options = {});

  ~RemoteService() override;
  RemoteService(const RemoteService&) = delete;
  RemoteService& operator=(const RemoteService&) = delete;

  // Synchronous round-trip; transport failures surface as IOError
  // replies (never silently retried: a sent Put may have committed).
  Reply Execute(const Command& cmd) override;

  // Pipelined dispatch: returns immediately; the future resolves when
  // the server's reply frame arrives (possibly out of submission order).
  std::future<Reply> Submit(Command cmd);

  // Fetches a chunk from the server's LOCAL store only — no server-side
  // peer resolution (kChunkPeerGet). The building block PeerChunkResolver
  // uses for server-to-server fetches: NotFound from this call is an
  // authoritative "this servlet does not hold the cid".
  Status GetChunkLocal(const Hash& cid, Chunk* chunk);

  // Batched form (kChunkPeerGetBatch): one round trip asks the server's
  // LOCAL store for every cid; (*present)[i] says whether (*chunks)[i]
  // came back. A false flag is the same authoritative "not here" as a
  // NotFound from GetChunkLocal — absence never fails the call.
  Status GetChunksLocal(const std::vector<Hash>& cids,
                        std::vector<Chunk>* chunks,
                        std::vector<bool>* present);

  // Sync non-command round trip: ships `payload` under `type` and
  // returns the kControlResp body on OK. The transport the replication
  // subsystem ships its kReplAppend / kReplSnapshot / kReplStatus
  // payloads over.
  Result<Bytes> Call(FrameType type, Slice payload) {
    return CallControl(type, payload);
  }

  ChunkStore* store() const override { return &chunk_view_; }
  const TreeConfig& tree_config() const override { return tree_config_; }
  const std::string& endpoint() const { return endpoint_; }
  // From the kHello handshake: how many peer servlets the server can
  // resolve chunk misses from (0 = peer fetch disabled over there).
  uint64_t server_peer_count() const { return server_peer_count_; }
  // From the kHello handshake: the server's replication standing
  // (has_group=false against a non-replicated server).
  const HelloReplInfo& server_repl_info() const { return server_repl_; }

  // Connections established over the lifetime (1 + reconnects + pool
  // growth); test surface for reconnect behavior.
  uint64_t connections_opened() const {
    return connections_opened_.load(std::memory_order_relaxed);
  }

 private:
  friend class RemoteChunkStore;

  // One pooled connection with its demultiplexing reader and its
  // send-coalescing writer. Sync calls send inline (latency path);
  // pipelined Submits append encoded frames to outbuf and the writer
  // ships whatever has accumulated in one SendAll — a deep pipeline
  // costs a fraction of a syscall per request on the way out.
  // The three per-connection locks share one (innermost) rank: they are
  // never held together — write_mu covers only the SendAll/SendFrame
  // syscall, pending_mu only the id-map touch, out_mu only the writer
  // queue — and the rank checker enforces exactly that.
  struct Connection {
    Socket sock;
    Mutex write_mu{kRankRemoteConn,
                   "remote-write"};  // serializes bytes onto the socket
    Mutex pending_mu{kRankRemoteConn, "remote-pending"};
    bool alive GUARDED_BY(pending_mu) = true;
    // request id -> completion; invoked by the reader thread (or by the
    // drain when the connection dies).
    std::unordered_map<uint64_t, std::function<void(Status, Frame&&)>> pending
        GUARDED_BY(pending_mu);
    std::thread reader;

    // --- writer state (guarded by out_mu) ---
    Mutex out_mu{kRankRemoteConn, "remote-out"};
    CondVar out_cv;
    // encoded frames awaiting the writer
    Bytes outbuf GUARDED_BY(out_mu);
    // writer hit a transport error
    bool write_failed GUARDED_BY(out_mu) = false;
    bool writer_stop GUARDED_BY(out_mu) = false;
    std::thread writer;
  };

  RemoteService(std::string endpoint, RemoteServiceOptions options)
      : endpoint_(std::move(endpoint)), options_(options) {}

  // Round-robin pick; replaces dead slots by reconnecting.
  Result<std::shared_ptr<Connection>> GetConnection();
  Result<std::shared_ptr<Connection>> OpenConnection();
  static void ReaderLoop(Connection* conn);
  static void WriterLoop(Connection* conn);
  static void FailPending(Connection* conn, const Status& why);

  // Registers the callback and sends one frame. Sync (default): the
  // frame goes out inline; on transport failure the callback is NOT
  // invoked and the error returns to the caller. Pipelined: the frame
  // is handed to the connection's writer thread (coalesced with
  // whatever else is queued) and failures surface through the callback.
  Status SendRequest(FrameType type, Slice payload,
                     std::function<void(Status, Frame&&)> on_done,
                     bool pipelined = false);

  std::future<Reply> DispatchCommand(const Command& cmd, bool pipelined);
  // Sync non-command call: remote status, with the response body on OK.
  Result<Bytes> CallControl(FrameType type, Slice payload);

  const std::string endpoint_;
  const RemoteServiceOptions options_;
  TreeConfig tree_config_;
  uint64_t server_peer_count_ = 0;
  HelloReplInfo server_repl_;
  // Declared after options_: the member-init order guarantee that lets
  // the cache size come from the already-initialized options.
  mutable RemoteChunkStore chunk_view_{this, options_.chunk_cache_bytes};

  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> connections_opened_{0};

  // Acquired before any per-connection lock (GetConnection checks slot
  // liveness under pool_mu_ then pending_mu).
  Mutex pool_mu_{kRankRemoteClient, "remote-pool"};
  // fixed pool_size slots
  std::vector<std::shared_ptr<Connection>> pool_ GUARDED_BY(pool_mu_);
  // Every connection ever opened, so the destructor can join all reader
  // threads (replaced slots included).
  std::vector<std::shared_ptr<Connection>> all_conns_ GUARDED_BY(pool_mu_);
};

}  // namespace rpc
}  // namespace fb

#endif  // FORKBASE_RPC_REMOTE_SERVICE_H_
