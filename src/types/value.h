// Value: the typed payload of an FObject (Section 3.4).
//
// ForkBase distinguishes primitive types (small, stored inline in the meta
// chunk, optimized for fast access, never deduplicated) from chunkable
// types (stored as POS-Trees, deduplicated at chunk level).

#ifndef FORKBASE_TYPES_VALUE_H_
#define FORKBASE_TYPES_VALUE_H_

#include <cstdint>
#include <string>

#include "chunk/chunk.h"
#include "util/slice.h"

namespace fb {

enum class UType : uint8_t {
  // Primitive types.
  kBool = 0,
  kInt = 1,
  kString = 2,
  kTuple = 3,
  // Chunkable types.
  kBlob = 4,
  kList = 5,
  kMap = 6,
  kSet = 7,
};

const char* UTypeToString(UType t);

inline bool IsChunkable(UType t) {
  return t == UType::kBlob || t == UType::kList || t == UType::kMap ||
         t == UType::kSet;
}

// The POS-Tree leaf chunk type backing a chunkable UType.
inline ChunkType LeafChunkTypeFor(UType t) {
  switch (t) {
    case UType::kBlob:
      return ChunkType::kBlob;
    case UType::kList:
      return ChunkType::kList;
    case UType::kMap:
      return ChunkType::kMap;
    case UType::kSet:
      return ChunkType::kSet;
    default:
      return ChunkType::kBlob;  // unreachable for primitives
  }
}

// A typed value. For primitives, `bytes` holds the encoded value; for
// chunkables, `root` references the POS-Tree and `bytes` is unused.
class Value {
 public:
  Value() : type_(UType::kString) {}

  static Value OfBool(bool b) {
    Value v;
    v.type_ = UType::kBool;
    v.bytes_.push_back(b ? 1 : 0);
    return v;
  }
  static Value OfInt(int64_t i);
  static Value OfString(Slice s) {
    Value v;
    v.type_ = UType::kString;
    v.bytes_ = s.ToBytes();
    return v;
  }
  // A Tuple is an ordered sequence of byte strings, encoded length-prefixed.
  static Value OfTuple(const std::vector<Bytes>& fields);
  // Chunkable value referencing an existing POS-Tree.
  static Value OfTree(UType type, const Hash& root) {
    Value v;
    v.type_ = type;
    v.root_ = root;
    return v;
  }

  UType type() const { return type_; }
  bool is_chunkable() const { return IsChunkable(type_); }

  // Primitive accessors (callers must check type()).
  Slice bytes() const { return Slice(bytes_); }
  bool AsBool() const { return !bytes_.empty() && bytes_[0] != 0; }
  int64_t AsInt() const;
  std::string AsString() const { return BytesToString(bytes_); }
  std::vector<Bytes> AsTuple() const;

  // Chunkable accessor.
  const Hash& root() const { return root_; }

  bool operator==(const Value& o) const {
    return type_ == o.type_ && bytes_ == o.bytes_ && root_ == o.root_;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }

 private:
  UType type_;
  Bytes bytes_;
  Hash root_;
};

}  // namespace fb

#endif  // FORKBASE_TYPES_VALUE_H_
