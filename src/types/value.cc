#include "types/value.h"

#include "util/codec.h"

namespace fb {

const char* UTypeToString(UType t) {
  switch (t) {
    case UType::kBool:
      return "Bool";
    case UType::kInt:
      return "Int";
    case UType::kString:
      return "String";
    case UType::kTuple:
      return "Tuple";
    case UType::kBlob:
      return "Blob";
    case UType::kList:
      return "List";
    case UType::kMap:
      return "Map";
    case UType::kSet:
      return "Set";
  }
  return "Unknown";
}

Value Value::OfInt(int64_t i) {
  Value v;
  v.type_ = UType::kInt;
  PutVarint64(&v.bytes_, ZigZagEncode(i));
  return v;
}

int64_t Value::AsInt() const {
  ByteReader r{Slice(bytes_)};
  uint64_t raw = 0;
  if (!r.ReadVarint64(&raw).ok()) return 0;
  return ZigZagDecode(raw);
}

Value Value::OfTuple(const std::vector<Bytes>& fields) {
  Value v;
  v.type_ = UType::kTuple;
  for (const Bytes& f : fields) PutLengthPrefixed(&v.bytes_, Slice(f));
  return v;
}

std::vector<Bytes> Value::AsTuple() const {
  std::vector<Bytes> out;
  ByteReader r{Slice(bytes_)};
  while (!r.AtEnd()) {
    Slice f;
    if (!r.ReadLengthPrefixed(&f).ok()) break;
    out.push_back(f.ToBytes());
  }
  return out;
}

}  // namespace fb
