#include "types/handles.h"

namespace fb {

// ---------------------------------------------------------------------------
// Blob
// ---------------------------------------------------------------------------

Result<Blob> Blob::Create(ChunkStore* store, const TreeConfig& cfg,
                          Slice content) {
  FB_ASSIGN_OR_RETURN_IMPL(_root, Hash root,
                           PosTree::BuildFromBytes(store, cfg, content));
  return Blob(store, cfg, root);
}

Result<Bytes> Blob::ReadAll() const {
  FB_ASSIGN_OR_RETURN_IMPL(_n, const uint64_t n, tree_.Count());
  return tree_.ReadBytes(0, n);
}

Status Blob::Append(Slice data) {
  FB_ASSIGN_OR_RETURN(const uint64_t n, tree_.Count());
  return tree_.SpliceBytes(n, 0, data);
}

// ---------------------------------------------------------------------------
// FList
// ---------------------------------------------------------------------------

Result<FList> FList::Create(ChunkStore* store, const TreeConfig& cfg,
                            const std::vector<Bytes>& elements) {
  std::vector<Element> elems;
  elems.reserve(elements.size());
  for (const Bytes& e : elements) {
    Element el;
    el.value = e;
    elems.push_back(std::move(el));
  }
  FB_ASSIGN_OR_RETURN_IMPL(
      _root, Hash root,
      PosTree::BuildFromElements(store, cfg, ChunkType::kList, elems));
  return FList(store, cfg, root);
}

Status FList::Append(Slice element) {
  FB_ASSIGN_OR_RETURN(const uint64_t n, tree_.Count());
  Element e;
  e.value = element.ToBytes();
  return tree_.SpliceElements(n, 0, {std::move(e)});
}

Status FList::Insert(uint64_t index, Slice element) {
  Element e;
  e.value = element.ToBytes();
  return tree_.SpliceElements(index, 0, {std::move(e)});
}

Status FList::Assign(uint64_t index, Slice element) {
  Element e;
  e.value = element.ToBytes();
  return tree_.SpliceElements(index, 1, {std::move(e)});
}

Result<std::vector<Bytes>> FList::Elements() const {
  FB_ASSIGN_OR_RETURN_IMPL(_it, PosTree::Iterator it, tree_.Begin());
  std::vector<Bytes> out;
  while (it.Valid()) {
    FB_RETURN_NOT_OK(it.EnsureLoaded());
    out.push_back(it.value().ToBytes());
    FB_RETURN_NOT_OK(it.Next());
  }
  return out;
}

// ---------------------------------------------------------------------------
// FMap
// ---------------------------------------------------------------------------

Result<FMap> FMap::Create(ChunkStore* store, const TreeConfig& cfg) {
  FB_ASSIGN_OR_RETURN_IMPL(_root, Hash root,
                           PosTree::EmptyRoot(store, ChunkType::kMap));
  return FMap(store, cfg, root);
}

Status FMap::SetBatch(std::vector<std::pair<Bytes, Bytes>> entries) {
  std::vector<Element> upserts;
  upserts.reserve(entries.size());
  for (auto& [k, v] : entries) {
    Element e;
    e.key = std::move(k);
    e.value = std::move(v);
    upserts.push_back(std::move(e));
  }
  return tree_.UpsertBatch(std::move(upserts));
}

Result<std::vector<std::pair<Bytes, Bytes>>> FMap::Entries() const {
  FB_ASSIGN_OR_RETURN_IMPL(_it, PosTree::Iterator it, tree_.Begin());
  std::vector<std::pair<Bytes, Bytes>> out;
  while (it.Valid()) {
    FB_RETURN_NOT_OK(it.EnsureLoaded());
    out.emplace_back(it.key().ToBytes(), it.value().ToBytes());
    FB_RETURN_NOT_OK(it.Next());
  }
  return out;
}

// ---------------------------------------------------------------------------
// FSet
// ---------------------------------------------------------------------------

Result<FSet> FSet::Create(ChunkStore* store, const TreeConfig& cfg) {
  FB_ASSIGN_OR_RETURN_IMPL(_root, Hash root,
                           PosTree::EmptyRoot(store, ChunkType::kSet));
  return FSet(store, cfg, root);
}

Result<bool> FSet::Contains(Slice key) const {
  FB_ASSIGN_OR_RETURN_IMPL(_v, auto v, tree_.Find(key));
  return v.has_value();
}

Result<std::vector<Bytes>> FSet::Members() const {
  FB_ASSIGN_OR_RETURN_IMPL(_it, PosTree::Iterator it, tree_.Begin());
  std::vector<Bytes> out;
  while (it.Valid()) {
    FB_RETURN_NOT_OK(it.EnsureLoaded());
    out.push_back(it.key().ToBytes());
    FB_RETURN_NOT_OK(it.Next());
  }
  return out;
}

}  // namespace fb
