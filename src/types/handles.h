// Client-side handles for chunkable types (Blob, List, Map, Set).
//
// Per Section 3.4 / Figure 4, a Get of a chunkable object returns only a
// handle; data is fetched lazily, chunk by chunk. Mutations through a
// handle are buffered on the client side: they produce new chunks and
// advance the handle's private root, but the branch head only moves when
// the handle's value is committed back with Put.

#ifndef FORKBASE_TYPES_HANDLES_H_
#define FORKBASE_TYPES_HANDLES_H_

#include <optional>
#include <string>
#include <vector>

#include "pos_tree/tree.h"
#include "types/value.h"

namespace fb {

// Common base: wraps a PosTree and exposes the Value for Put.
class ChunkableHandle {
 public:
  ChunkableHandle(UType type, ChunkStore* store, const TreeConfig& cfg,
                  const Hash& root)
      : type_(type), tree_(store, cfg, LeafChunkTypeFor(type), root) {}

  UType type() const { return type_; }
  Hash root() const { return tree_.root(); }
  Value ToValue() const { return Value::OfTree(type_, tree_.root()); }
  Result<uint64_t> Size() const { return tree_.Count(); }
  Status VerifyIntegrity() const { return tree_.VerifyIntegrity(); }

 protected:
  UType type_;
  PosTree tree_;
};

// A byte sequence with in-place edits (Figure 4).
class Blob : public ChunkableHandle {
 public:
  Blob(ChunkStore* store, const TreeConfig& cfg, const Hash& root)
      : ChunkableHandle(UType::kBlob, store, cfg, root) {}

  // Creates a new Blob with the given content.
  static Result<Blob> Create(ChunkStore* store, const TreeConfig& cfg,
                             Slice content);

  Result<Bytes> Read(uint64_t pos, uint64_t n) const {
    return tree_.ReadBytes(pos, n);
  }
  Result<Bytes> ReadAll() const;

  Status Append(Slice data);
  Status Insert(uint64_t pos, Slice data) {
    return tree_.SpliceBytes(pos, 0, data);
  }
  Status Remove(uint64_t pos, uint64_t n) {
    return tree_.SpliceBytes(pos, n, Slice());
  }
  Status Splice(uint64_t pos, uint64_t n_delete, Slice data) {
    return tree_.SpliceBytes(pos, n_delete, data);
  }

  const PosTree& tree() const { return tree_; }
};

// An ordered sequence of byte-string elements.
class FList : public ChunkableHandle {
 public:
  FList(ChunkStore* store, const TreeConfig& cfg, const Hash& root)
      : ChunkableHandle(UType::kList, store, cfg, root) {}

  static Result<FList> Create(ChunkStore* store, const TreeConfig& cfg,
                              const std::vector<Bytes>& elements);

  Result<Bytes> Get(uint64_t index) const { return tree_.GetElement(index); }
  Status Append(Slice element);
  Status Insert(uint64_t index, Slice element);
  Status Remove(uint64_t index) { return tree_.SpliceElements(index, 1, {}); }
  Status Assign(uint64_t index, Slice element);

  // All elements, in order.
  Result<std::vector<Bytes>> Elements() const;

  const PosTree& tree() const { return tree_; }
};

// A sorted key-value mapping.
class FMap : public ChunkableHandle {
 public:
  FMap(ChunkStore* store, const TreeConfig& cfg, const Hash& root)
      : ChunkableHandle(UType::kMap, store, cfg, root) {}

  static Result<FMap> Create(ChunkStore* store, const TreeConfig& cfg);

  Result<std::optional<Bytes>> Get(Slice key) const { return tree_.Find(key); }
  Status Set(Slice key, Slice value) {
    return tree_.InsertOrAssign(key, value);
  }
  // Upserts many entries in one chunking pass — much faster than
  // repeated Set for batched commits.
  Status SetBatch(std::vector<std::pair<Bytes, Bytes>> entries);
  Status Remove(Slice key) { return tree_.Erase(key); }

  // Ordered scan of all entries.
  Result<std::vector<std::pair<Bytes, Bytes>>> Entries() const;

  const PosTree& tree() const { return tree_; }
};

// A sorted set of byte-string members.
class FSet : public ChunkableHandle {
 public:
  FSet(ChunkStore* store, const TreeConfig& cfg, const Hash& root)
      : ChunkableHandle(UType::kSet, store, cfg, root) {}

  static Result<FSet> Create(ChunkStore* store, const TreeConfig& cfg);

  Result<bool> Contains(Slice key) const;
  Status Add(Slice key) { return tree_.InsertOrAssign(key, Slice()); }
  Status Remove(Slice key) { return tree_.Erase(key); }
  Result<std::vector<Bytes>> Members() const;

  const PosTree& tree() const { return tree_; }
};

}  // namespace fb

#endif  // FORKBASE_TYPES_HANDLES_H_
