#include "types/fobject.h"

#include "util/codec.h"

namespace fb {

FObject FObject::Make(Slice key, Value value, std::vector<Hash> bases,
                      uint64_t depth, Slice context) {
  FObject o;
  o.key_ = key.ToString();
  o.value_ = std::move(value);
  o.bases_ = std::move(bases);
  o.depth_ = depth;
  o.context_ = context.ToBytes();
  return o;
}

Chunk FObject::ToChunk() const {
  Bytes payload;
  payload.push_back(static_cast<uint8_t>(value_.type()));
  PutLengthPrefixed(&payload, Slice(key_));
  if (value_.is_chunkable()) {
    PutLengthPrefixed(&payload, value_.root().slice());
  } else {
    PutLengthPrefixed(&payload, value_.bytes());
  }
  PutVarint64(&payload, depth_);
  PutVarint64(&payload, bases_.size());
  for (const Hash& b : bases_) AppendSlice(&payload, b.slice());
  PutLengthPrefixed(&payload, Slice(context_));
  return Chunk(ChunkType::kMeta, std::move(payload));
}

Result<FObject> FObject::FromChunk(const Chunk& chunk) {
  if (chunk.type() != ChunkType::kMeta) {
    return Status::TypeMismatch("not a Meta chunk");
  }
  ByteReader r(chunk.payload());
  Slice type_byte;
  FB_RETURN_NOT_OK(r.ReadRaw(1, &type_byte));
  if (type_byte[0] > static_cast<uint8_t>(UType::kSet)) {
    return Status::Corruption("bad UType");
  }
  const UType type = static_cast<UType>(type_byte[0]);

  FObject o;
  Slice key, data;
  FB_RETURN_NOT_OK(r.ReadLengthPrefixed(&key));
  FB_RETURN_NOT_OK(r.ReadLengthPrefixed(&data));
  o.key_ = key.ToString();
  if (IsChunkable(type)) {
    if (data.size() != Hash::kSize) {
      return Status::Corruption("chunkable data must be a cid");
    }
    Sha256::Digest d;
    std::copy(data.begin(), data.end(), d.begin());
    o.value_ = Value::OfTree(type, Hash(d));
  } else {
    switch (type) {
      case UType::kBool:
        o.value_ = Value::OfBool(!data.empty() && data[0] != 0);
        break;
      case UType::kInt: {
        ByteReader ir(data);
        uint64_t raw = 0;
        FB_RETURN_NOT_OK(ir.ReadVarint64(&raw));
        o.value_ = Value::OfInt(ZigZagDecode(raw));
        break;
      }
      case UType::kString:
        o.value_ = Value::OfString(data);
        break;
      case UType::kTuple: {
        std::vector<Bytes> fields;
        ByteReader tr(data);
        while (!tr.AtEnd()) {
          Slice f;
          FB_RETURN_NOT_OK(tr.ReadLengthPrefixed(&f));
          fields.push_back(f.ToBytes());
        }
        o.value_ = Value::OfTuple(fields);
        break;
      }
      default:
        return Status::Corruption("unreachable");
    }
  }

  FB_RETURN_NOT_OK(r.ReadVarint64(&o.depth_));
  uint64_t n_bases = 0;
  FB_RETURN_NOT_OK(r.ReadVarint64(&n_bases));
  if (n_bases > r.remaining() / Hash::kSize) {
    return Status::Corruption("bases count exceeds payload");
  }
  for (uint64_t i = 0; i < n_bases; ++i) {
    Slice b;
    FB_RETURN_NOT_OK(r.ReadRaw(Hash::kSize, &b));
    Sha256::Digest d;
    std::copy(b.begin(), b.end(), d.begin());
    o.bases_.push_back(Hash(d));
  }
  Slice ctx;
  FB_RETURN_NOT_OK(r.ReadLengthPrefixed(&ctx));
  o.context_ = ctx.ToBytes();
  return o;
}

Hash FObject::uid() const { return ToChunk().ComputeCid(); }

Result<Hash> FObject::Store(ChunkStore* store) const {
  return store->Put(ToChunk());
}

Result<FObject> FObject::Load(const ChunkStore& store, const Hash& uid) {
  Chunk chunk;
  Status s = store.Get(uid, &chunk);
  if (!s.ok()) return s;
  if (chunk.ComputeCid() != uid) {
    return Status::Corruption("meta chunk does not hash to requested uid "
                              "(tampered storage)");
  }
  return FromChunk(chunk);
}

}  // namespace fb
