// FObject: the versioned object node of the derivation graph (Figure 2).
//
//   struct FObject {
//     enum type;          // object type
//     byte[] key;         // object key
//     byte[] data;        // object value (inline primitive or tree root)
//     int depth;          // distance to the first version
//     vector<uid> bases;  // versions it derives from
//     byte[] context;     // reserved for application metadata
//   }
//
// The FObject is serialized into a Meta chunk; its uid is that chunk's
// cid, so a uid commits to the value bytes AND (through `bases`, a
// cryptographic hash chain) the complete derivation history — this is the
// tamper-evident version property of Section 3.2.

#ifndef FORKBASE_TYPES_FOBJECT_H_
#define FORKBASE_TYPES_FOBJECT_H_

#include <string>
#include <vector>

#include "chunk/chunk_store.h"
#include "types/value.h"
#include "util/status.h"

namespace fb {

class FObject {
 public:
  FObject() = default;

  // Builds a new version of `key` holding `value`, derived from `bases`
  // (their FObjects supply depth). `context` is free-form application
  // metadata (commit message, nonce, timestamp, ...).
  static FObject Make(Slice key, Value value, std::vector<Hash> bases,
                      uint64_t depth, Slice context = Slice());

  UType type() const { return value_.type(); }
  const std::string& key() const { return key_; }
  const Value& value() const { return value_; }
  uint64_t depth() const { return depth_; }
  const std::vector<Hash>& bases() const { return bases_; }
  const Bytes& context() const { return context_; }

  // The version id: cid of the serialized meta chunk.
  Hash uid() const;

  // Serializes to a Meta chunk.
  Chunk ToChunk() const;

  // Parses a Meta chunk.
  static Result<FObject> FromChunk(const Chunk& chunk);

  // Stores the meta chunk and returns the uid.
  Result<Hash> Store(ChunkStore* store) const;

  // Loads and parses the FObject with version `uid`. Verifies that the
  // fetched chunk actually hashes to `uid` (tamper evidence).
  static Result<FObject> Load(const ChunkStore& store, const Hash& uid);

 private:
  std::string key_;
  Value value_;
  uint64_t depth_ = 0;
  std::vector<Hash> bases_;
  Bytes context_;
};

}  // namespace fb

#endif  // FORKBASE_TYPES_FOBJECT_H_
