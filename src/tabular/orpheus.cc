#include "tabular/orpheus.h"

#include <cstdlib>
#include <unordered_map>

namespace fb {

Result<OrpheusLikeStore::VersionId> OrpheusLikeStore::Init(
    const std::vector<Record>& rows) {
  std::vector<uint64_t> rids;
  rids.reserve(rows.size());
  for (const Record& r : rows) {
    const uint64_t rid = next_rid_++;
    Bytes ser = SerializeRecord(r);
    storage_bytes_ += ser.size() + sizeof(uint64_t);
    records_[rid] = std::move(ser);
    rids.push_back(rid);
  }
  storage_bytes_ += rids.size() * sizeof(uint64_t);
  const VersionId vid = next_version_++;
  versions_[vid] = std::move(rids);
  return vid;
}

Result<std::vector<Record>> OrpheusLikeStore::Checkout(
    VersionId version) const {
  auto it = versions_.find(version);
  if (it == versions_.end()) return Status::NotFound("version");
  // Full materialization: every record is copied out.
  std::vector<Record> rows;
  rows.reserve(it->second.size());
  for (uint64_t rid : it->second) {
    auto rit = records_.find(rid);
    if (rit == records_.end()) return Status::Corruption("dangling rid");
    FB_ASSIGN_OR_RETURN(Record r, DeserializeRecord(Slice(rit->second)));
    rows.push_back(std::move(r));
  }
  return rows;
}

Result<OrpheusLikeStore::VersionId> OrpheusLikeStore::Commit(
    VersionId parent, const std::vector<Record>& rows) {
  auto pit = versions_.find(parent);
  if (pit == versions_.end()) return Status::NotFound("parent version");
  const std::vector<uint64_t>& parent_rids = pit->second;

  // Index the parent's records by primary key for rid reuse.
  std::unordered_map<std::string, uint64_t> parent_by_pk;
  for (uint64_t rid : parent_rids) {
    FB_ASSIGN_OR_RETURN(Record r, DeserializeRecord(Slice(records_.at(rid))));
    if (!r.empty()) parent_by_pk[r[0]] = rid;
  }

  std::vector<uint64_t> rids;
  rids.reserve(rows.size());
  for (const Record& r : rows) {
    Bytes ser = SerializeRecord(r);
    auto hit = r.empty() ? parent_by_pk.end() : parent_by_pk.find(r[0]);
    if (hit != parent_by_pk.end() && records_.at(hit->second) == ser) {
      rids.push_back(hit->second);  // unchanged: reuse rid
      continue;
    }
    const uint64_t rid = next_rid_++;
    storage_bytes_ += ser.size() + sizeof(uint64_t);
    records_[rid] = std::move(ser);
    rids.push_back(rid);
  }
  // The complete rid vector is stored for every version — this is the
  // per-version overhead OrpheusDB pays even for tiny deltas.
  storage_bytes_ += rids.size() * sizeof(uint64_t);
  const VersionId vid = next_version_++;
  versions_[vid] = std::move(rids);
  return vid;
}

Result<size_t> OrpheusLikeStore::Diff(VersionId v1, VersionId v2) const {
  auto it1 = versions_.find(v1);
  auto it2 = versions_.find(v2);
  if (it1 == versions_.end() || it2 == versions_.end()) {
    return Status::NotFound("version");
  }
  // Full vector comparison, position by position.
  const auto& a = it1->second;
  const auto& b = it2->second;
  size_t diffs = 0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) ++diffs;
  }
  diffs += (a.size() > n ? a.size() - n : 0) + (b.size() > n ? b.size() - n : 0);
  return diffs;
}

Result<int64_t> OrpheusLikeStore::AggregateSum(VersionId version,
                                               const std::string& column)
    const {
  const int col = schema_.IndexOf(column);
  if (col < 0) return Status::InvalidArgument("unknown column " + column);
  FB_ASSIGN_OR_RETURN(std::vector<Record> rows, Checkout(version));
  int64_t sum = 0;
  for (const Record& r : rows) {
    if (static_cast<size_t>(col) < r.size()) {
      sum += std::strtoll(r[col].c_str(), nullptr, 10);
    }
  }
  return sum;
}

}  // namespace fb
