// A small relational query layer over versioned datasets — the "richer
// query functionalities ... added to the view layer" that Section 6.4.3
// says ForkBase can be extended with.
//
// Queries run against a branch head of a RowDataset or ColumnDataset:
//
//   QueryResult r = Query(&ds, "master")
//                       .Filter("qty", Predicate::Gt(100))
//                       .Project({"pk", "qty"})
//                       .Run();
//
// Aggregations (COUNT/SUM/MIN/MAX/AVG) and single-column GROUP BY are
// supported. The column layout evaluates single-column predicates and
// aggregations by scanning only the referenced columns' chunks.

#ifndef FORKBASE_TABULAR_QUERY_H_
#define FORKBASE_TABULAR_QUERY_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "tabular/dataset.h"

namespace fb {

// A predicate over one column's string value.
class Predicate {
 public:
  using Fn = std::function<bool(const std::string&)>;

  static Predicate Eq(std::string v) {
    return Predicate([v = std::move(v)](const std::string& x) {
      return x == v;
    });
  }
  static Predicate Ne(std::string v) {
    return Predicate([v = std::move(v)](const std::string& x) {
      return x != v;
    });
  }
  // Numeric comparisons (operands parsed as int64).
  static Predicate Gt(int64_t v);
  static Predicate Ge(int64_t v);
  static Predicate Lt(int64_t v);
  static Predicate Le(int64_t v);
  // Substring containment.
  static Predicate Contains(std::string needle);

  bool operator()(const std::string& value) const { return fn_(value); }

 private:
  explicit Predicate(Fn fn) : fn_(std::move(fn)) {}
  Fn fn_;
};

enum class AggKind { kCount, kSum, kMin, kMax, kAvg };

struct AggValue {
  double value = 0;
  uint64_t count = 0;
};

struct QueryResult {
  std::vector<std::string> columns;  // projected column names
  std::vector<Record> rows;
};

// Builder-style query over a row-layout dataset.
class RowQuery {
 public:
  RowQuery(RowDataset* dataset, std::string branch)
      : dataset_(dataset), branch_(std::move(branch)) {}

  RowQuery& Filter(const std::string& column, Predicate p) {
    filters_.emplace_back(column, std::move(p));
    return *this;
  }
  RowQuery& Project(std::vector<std::string> columns) {
    projection_ = std::move(columns);
    return *this;
  }
  RowQuery& Limit(size_t n) {
    limit_ = n;
    return *this;
  }

  // Materializes matching (projected) rows.
  Result<QueryResult> Run();

  // Aggregates `column` over matching rows.
  Result<AggValue> Aggregate(AggKind kind, const std::string& column);

  // GROUP BY `group_column`, aggregating `agg_column` per group.
  Result<std::map<std::string, AggValue>> GroupBy(
      const std::string& group_column, AggKind kind,
      const std::string& agg_column);

 private:
  // Streams matching records into `fn`; stops early when fn returns
  // false.
  Status Scan(const std::function<bool(const Record&)>& fn);

  RowDataset* dataset_;
  std::string branch_;
  std::vector<std::pair<std::string, Predicate>> filters_;
  std::optional<std::vector<std::string>> projection_;
  std::optional<size_t> limit_;
};

// Columnar aggregation with an optional single-column predicate: reads
// only the filter column and the aggregated column.
Result<AggValue> ColumnAggregate(ColumnDataset* dataset,
                                 const std::string& branch, AggKind kind,
                                 const std::string& agg_column,
                                 const std::string& filter_column = "",
                                 const Predicate* filter = nullptr);

// Folds one value into an aggregate.
void AggAccumulate(AggKind kind, const std::string& value, AggValue* acc);
// Finalizes (AVG divides by count).
double AggFinalize(AggKind kind, const AggValue& acc);

}  // namespace fb

#endif  // FORKBASE_TABULAR_QUERY_H_
