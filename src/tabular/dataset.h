// ForkBase-backed relational datasets (Section 5.3) in two physical
// layouts:
//
//   * RowDataset    — each record is a Tuple embedded in a Map keyed by
//                     its primary key; efficient point updates and
//                     checkout-free modification.
//   * ColumnDataset — each column's values form a List, embedded in a Map
//                     keyed by the column name; efficient analytical
//                     scans (Figure 17b's 10x gap).
//
// Both layouts version the dataset as one FObject per commit, so branch
// management, diffs and dedup come from the engine.

#ifndef FORKBASE_TABULAR_DATASET_H_
#define FORKBASE_TABULAR_DATASET_H_

#include <optional>
#include <string>
#include <vector>

#include "api/db.h"
#include "tabular/record.h"

namespace fb {

class RowDataset {
 public:
  RowDataset(ForkBase* db, std::string name, Schema schema)
      : db_(db), name_(std::move(name)), schema_(std::move(schema)) {}

  // Imports rows as the first version on the default branch.
  Status Import(const std::vector<Record>& rows);

  // Updates (or inserts) records in place on a branch; one commit.
  Status UpdateRecords(const std::string& branch,
                       const std::vector<Record>& rows);

  Result<std::optional<Record>> GetRecord(const std::string& branch,
                                          const std::string& pk);

  Result<uint64_t> NumRecords(const std::string& branch);

  // Sum over an integer column across all records.
  Result<int64_t> AggregateSum(const std::string& branch,
                               const std::string& column);

  // Number of differing primary keys between two branch heads.
  Result<size_t> DiffBranches(const std::string& b1, const std::string& b2);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  ForkBase* db() const { return db_; }

  // CSV file interchange (header line = schema columns).
  Status ImportCsvFile(const std::string& path);
  Status ExportCsvFile(const std::string& branch, const std::string& path);

 private:
  Result<FMap> OpenMap(const std::string& branch);

  ForkBase* db_;
  std::string name_;
  Schema schema_;
};

class ColumnDataset {
 public:
  ColumnDataset(ForkBase* db, std::string name, Schema schema)
      : db_(db), name_(std::move(name)), schema_(std::move(schema)) {}

  Status Import(const std::vector<Record>& rows);

  // Updates whole records by row position (pk order of the import).
  Status UpdateRows(const std::string& branch,
                    const std::vector<std::pair<uint64_t, Record>>& updates);

  Result<uint64_t> NumRecords(const std::string& branch);

  Result<int64_t> AggregateSum(const std::string& branch,
                               const std::string& column);

  // All values of one column.
  Result<std::vector<std::string>> ReadColumn(const std::string& branch,
                                              const std::string& column);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  ForkBase* db() const { return db_; }

 private:
  // The column map for a branch head: column name -> List tree root.
  Result<FMap> OpenMap(const std::string& branch);
  Result<PosTree> OpenColumn(FMap* map, const std::string& column);

  ForkBase* db_;
  std::string name_;
  Schema schema_;
};

}  // namespace fb

#endif  // FORKBASE_TABULAR_DATASET_H_
