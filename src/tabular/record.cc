#include "tabular/record.h"

#include <sstream>

#include "util/codec.h"
#include "util/random.h"

namespace fb {

Bytes SerializeRecord(const Record& record) {
  Bytes out;
  for (const std::string& f : record) PutLengthPrefixed(&out, Slice(f));
  return out;
}

Result<Record> DeserializeRecord(Slice data) {
  Record record;
  ByteReader r(data);
  while (!r.AtEnd()) {
    Slice f;
    FB_RETURN_NOT_OK(r.ReadLengthPrefixed(&f));
    record.push_back(f.ToString());
  }
  return record;
}

std::string RecordToCsv(const Record& record) {
  std::string out;
  for (size_t i = 0; i < record.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += record[i];
  }
  return out;
}

Record RecordFromCsv(const std::string& line) {
  Record record;
  std::stringstream ss(line);
  std::string field;
  while (std::getline(ss, field, ',')) record.push_back(field);
  return record;
}

Schema DatasetSchema() {
  return Schema{{"pk", "qty", "price", "name", "address", "comment"}};
}

std::vector<Record> GenerateDataset(uint64_t num_records, uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> rows;
  rows.reserve(num_records);
  for (uint64_t i = 0; i < num_records; ++i) {
    Record r;
    r.push_back(MakeKey(i, 10, "pk"));                       // 12 bytes
    r.push_back(std::to_string(rng.Uniform(10000)));         // int field
    r.push_back(std::to_string(rng.Uniform(1000000)));       // int field
    r.push_back(rng.String(30));                             // name
    r.push_back(rng.String(60));                             // address
    r.push_back(rng.String(60));                             // comment
    rows.push_back(std::move(r));
  }
  return rows;
}

}  // namespace fb
