// OrpheusLikeStore: the OrpheusDB-style baseline for collaborative
// analytics (Section 6.4). OrpheusDB versions a relational dataset by
// keeping a shared record table (rid -> record) plus, per version, the
// full vector of rids belonging to that version:
//
//   * checkout materializes a complete working copy of the version;
//   * commit stores the changed records under fresh rids AND a complete
//     new rid vector;
//   * diff compares the two versions' full rid vectors.
//
// Substitution note (DESIGN.md): the original bolts onto Postgres; this
// in-process reimplementation preserves the data layout and the costs
// Figures 16/17 measure (full-copy checkout, rid-vector growth, full
// vector comparison).

#ifndef FORKBASE_TABULAR_ORPHEUS_H_
#define FORKBASE_TABULAR_ORPHEUS_H_

#include <map>
#include <string>
#include <vector>

#include "tabular/record.h"
#include "util/status.h"

namespace fb {

class OrpheusLikeStore {
 public:
  using VersionId = uint64_t;

  explicit OrpheusLikeStore(Schema schema) : schema_(std::move(schema)) {}

  // Creates version 1 from `rows`.
  Result<VersionId> Init(const std::vector<Record>& rows);

  // Materializes a full working copy of `version`.
  Result<std::vector<Record>> Checkout(VersionId version) const;

  // Commits a working copy derived from `parent`: records equal to the
  // parent's reuse their rid, changed/new records get fresh rids; the
  // complete rid vector of the new version is stored.
  Result<VersionId> Commit(VersionId parent, const std::vector<Record>& rows);

  // Number of record-level differences, via full rid-vector comparison.
  Result<size_t> Diff(VersionId v1, VersionId v2) const;

  // Aggregation over a working copy (row-oriented scan).
  Result<int64_t> AggregateSum(VersionId version,
                               const std::string& column) const;

  uint64_t StorageBytes() const { return storage_bytes_; }
  size_t NumVersions() const { return versions_.size(); }

 private:
  Schema schema_;
  std::map<uint64_t, Bytes> records_;            // rid -> serialized record
  std::map<VersionId, std::vector<uint64_t>> versions_;  // full rid vectors
  // pk -> rid per version parent lookup happens through checkout.
  uint64_t next_rid_ = 1;
  VersionId next_version_ = 1;
  uint64_t storage_bytes_ = 0;
};

}  // namespace fb

#endif  // FORKBASE_TABULAR_ORPHEUS_H_
