#include "tabular/dataset.h"

namespace fb {

// ---------------------------------------------------------------------------
// RowDataset
// ---------------------------------------------------------------------------

Result<FMap> RowDataset::OpenMap(const std::string& branch) {
  FB_ASSIGN_OR_RETURN(FObject obj, db_->Get(name_, branch));
  return db_->GetMap(obj);
}

Status RowDataset::Import(const std::vector<Record>& rows) {
  // Bulk-build the canonical Map tree from sorted (pk, tuple) elements —
  // rows are generated pk-sorted; sort defensively otherwise.
  std::vector<Element> elems;
  elems.reserve(rows.size());
  for (const Record& r : rows) {
    if (r.empty()) return Status::InvalidArgument("empty record");
    Element e;
    e.key = ToBytes(r[0]);
    e.value = SerializeRecord(r);
    elems.push_back(std::move(e));
  }
  std::sort(elems.begin(), elems.end(),
            [](const Element& a, const Element& b) { return a.key < b.key; });
  FB_ASSIGN_OR_RETURN(Hash root,
                      PosTree::BuildFromElements(db_->store(),
                                                 db_->tree_config(),
                                                 ChunkType::kMap, elems));
  return db_->Put(name_, Value::OfTree(UType::kMap, root)).status();
}

Status RowDataset::UpdateRecords(const std::string& branch,
                                 const std::vector<Record>& rows) {
  FB_ASSIGN_OR_RETURN(FMap map, OpenMap(branch));
  std::vector<std::pair<Bytes, Bytes>> updates;
  updates.reserve(rows.size());
  for (const Record& r : rows) {
    if (r.empty()) return Status::InvalidArgument("empty record");
    updates.emplace_back(ToBytes(r[0]), SerializeRecord(r));
  }
  FB_RETURN_NOT_OK(map.SetBatch(std::move(updates)));
  return db_->Put(name_, branch, map.ToValue()).status();
}

Result<std::optional<Record>> RowDataset::GetRecord(const std::string& branch,
                                                    const std::string& pk) {
  FB_ASSIGN_OR_RETURN(FMap map, OpenMap(branch));
  FB_ASSIGN_OR_RETURN(auto bytes, map.Get(Slice(pk)));
  if (!bytes.has_value()) return std::optional<Record>{};
  FB_ASSIGN_OR_RETURN(Record r, DeserializeRecord(Slice(*bytes)));
  return std::optional<Record>(std::move(r));
}

Result<uint64_t> RowDataset::NumRecords(const std::string& branch) {
  FB_ASSIGN_OR_RETURN(FMap map, OpenMap(branch));
  return map.Size();
}

Result<int64_t> RowDataset::AggregateSum(const std::string& branch,
                                         const std::string& column) {
  const int col = schema_.IndexOf(column);
  if (col < 0) return Status::InvalidArgument("unknown column " + column);
  FB_ASSIGN_OR_RETURN(FMap map, OpenMap(branch));
  FB_ASSIGN_OR_RETURN(PosTree::Iterator it, map.tree().Begin());
  int64_t sum = 0;
  while (it.Valid()) {
    FB_RETURN_NOT_OK(it.EnsureLoaded());
    // Row layout pays full-record extraction per row.
    FB_ASSIGN_OR_RETURN(Record r, DeserializeRecord(it.value()));
    if (static_cast<size_t>(col) < r.size()) {
      sum += std::strtoll(r[col].c_str(), nullptr, 10);
    }
    FB_RETURN_NOT_OK(it.Next());
  }
  return sum;
}

Status RowDataset::ImportCsvFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("open " + path);
  char buf[4096];
  std::vector<Record> rows;
  bool header = true;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    std::string line(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    Record r = RecordFromCsv(line);
    if (header) {
      // Validate the header against the schema.
      if (r != Record(schema_.columns.begin(), schema_.columns.end())) {
        std::fclose(f);
        return Status::InvalidArgument("csv header does not match schema");
      }
      header = false;
      continue;
    }
    rows.push_back(std::move(r));
  }
  std::fclose(f);
  return Import(rows);
}

Status RowDataset::ExportCsvFile(const std::string& branch,
                                 const std::string& path) {
  FB_ASSIGN_OR_RETURN(FMap map, OpenMap(branch));
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("create " + path);
  Record header(schema_.columns.begin(), schema_.columns.end());
  std::fprintf(f, "%s\n", RecordToCsv(header).c_str());

  auto it = map.tree().Begin();
  if (!it.ok()) {
    std::fclose(f);
    return it.status();
  }
  while (it->Valid()) {
    Status s = it->EnsureLoaded();
    if (!s.ok()) {
      std::fclose(f);
      return s;
    }
    auto r = DeserializeRecord(it->value());
    if (!r.ok()) {
      std::fclose(f);
      return r.status();
    }
    std::fprintf(f, "%s\n", RecordToCsv(*r).c_str());
    s = it->Next();
    if (!s.ok()) {
      std::fclose(f);
      return s;
    }
  }
  if (std::fclose(f) != 0) return Status::IOError("close " + path);
  return Status::OK();
}

Result<size_t> RowDataset::DiffBranches(const std::string& b1,
                                        const std::string& b2) {
  FB_ASSIGN_OR_RETURN(Hash h1, db_->Head(name_, b1));
  FB_ASSIGN_OR_RETURN(Hash h2, db_->Head(name_, b2));
  FB_ASSIGN_OR_RETURN(std::vector<KeyDiff> diff,
                      db_->DiffSortedVersions(h1, h2));
  return diff.size();
}

// ---------------------------------------------------------------------------
// ColumnDataset
// ---------------------------------------------------------------------------

Result<FMap> ColumnDataset::OpenMap(const std::string& branch) {
  FB_ASSIGN_OR_RETURN(FObject obj, db_->Get(name_, branch));
  return db_->GetMap(obj);
}

Result<PosTree> ColumnDataset::OpenColumn(FMap* map,
                                          const std::string& column) {
  FB_ASSIGN_OR_RETURN(auto root_bytes, map->Get(Slice(column)));
  if (!root_bytes.has_value()) {
    return Status::NotFound("column '" + column + "'");
  }
  if (root_bytes->size() != Hash::kSize) {
    return Status::Corruption("column root is not a cid");
  }
  Sha256::Digest d;
  std::copy(root_bytes->begin(), root_bytes->end(), d.begin());
  return PosTree(db_->store(), db_->tree_config(), ChunkType::kList, Hash(d));
}

Status ColumnDataset::Import(const std::vector<Record>& rows) {
  FB_ASSIGN_OR_RETURN(FMap map, FMap::Create(db_->store(),
                                             db_->tree_config()));
  for (size_t c = 0; c < schema_.columns.size(); ++c) {
    std::vector<Element> elems;
    elems.reserve(rows.size());
    for (const Record& r : rows) {
      Element e;
      e.value = c < r.size() ? ToBytes(r[c]) : Bytes{};
      elems.push_back(std::move(e));
    }
    FB_ASSIGN_OR_RETURN(Hash root,
                        PosTree::BuildFromElements(db_->store(),
                                                   db_->tree_config(),
                                                   ChunkType::kList, elems));
    FB_RETURN_NOT_OK(map.Set(Slice(schema_.columns[c]), root.slice()));
  }
  return db_->Put(name_, map.ToValue()).status();
}

Status ColumnDataset::UpdateRows(
    const std::string& branch,
    const std::vector<std::pair<uint64_t, Record>>& updates) {
  FB_ASSIGN_OR_RETURN(FMap map, OpenMap(branch));
  for (size_t c = 0; c < schema_.columns.size(); ++c) {
    FB_ASSIGN_OR_RETURN(PosTree column, OpenColumn(&map, schema_.columns[c]));
    for (const auto& [row, record] : updates) {
      Element e;
      e.value = c < record.size() ? ToBytes(record[c]) : Bytes{};
      FB_RETURN_NOT_OK(column.SpliceElements(row, 1, {e}));
    }
    FB_RETURN_NOT_OK(
        map.Set(Slice(schema_.columns[c]), column.root().slice()));
  }
  return db_->Put(name_, branch, map.ToValue()).status();
}

Result<uint64_t> ColumnDataset::NumRecords(const std::string& branch) {
  FB_ASSIGN_OR_RETURN(FMap map, OpenMap(branch));
  FB_ASSIGN_OR_RETURN(PosTree column, OpenColumn(&map, schema_.columns[0]));
  return column.Count();
}

Result<int64_t> ColumnDataset::AggregateSum(const std::string& branch,
                                            const std::string& column) {
  if (schema_.IndexOf(column) < 0) {
    return Status::InvalidArgument("unknown column " + column);
  }
  FB_ASSIGN_OR_RETURN(FMap map, OpenMap(branch));
  FB_ASSIGN_OR_RETURN(PosTree col, OpenColumn(&map, column));
  FB_ASSIGN_OR_RETURN(PosTree::Iterator it, col.Begin());
  int64_t sum = 0;
  while (it.Valid()) {
    FB_RETURN_NOT_OK(it.EnsureLoaded());
    // Column layout touches only this column's chunks.
    sum += std::strtoll(it.value().ToString().c_str(), nullptr, 10);
    FB_RETURN_NOT_OK(it.Next());
  }
  return sum;
}

Result<std::vector<std::string>> ColumnDataset::ReadColumn(
    const std::string& branch, const std::string& column) {
  FB_ASSIGN_OR_RETURN(FMap map, OpenMap(branch));
  FB_ASSIGN_OR_RETURN(PosTree col, OpenColumn(&map, column));
  FB_ASSIGN_OR_RETURN(PosTree::Iterator it, col.Begin());
  std::vector<std::string> out;
  while (it.Valid()) {
    FB_RETURN_NOT_OK(it.EnsureLoaded());
    out.push_back(it.value().ToString());
    FB_RETURN_NOT_OK(it.Next());
  }
  return out;
}

}  // namespace fb
