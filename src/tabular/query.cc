#include "tabular/query.h"

#include <algorithm>
#include <cstdlib>

namespace fb {

namespace {
int64_t AsInt(const std::string& s) {
  return std::strtoll(s.c_str(), nullptr, 10);
}
}  // namespace

Predicate Predicate::Gt(int64_t v) {
  return Predicate([v](const std::string& x) { return AsInt(x) > v; });
}
Predicate Predicate::Ge(int64_t v) {
  return Predicate([v](const std::string& x) { return AsInt(x) >= v; });
}
Predicate Predicate::Lt(int64_t v) {
  return Predicate([v](const std::string& x) { return AsInt(x) < v; });
}
Predicate Predicate::Le(int64_t v) {
  return Predicate([v](const std::string& x) { return AsInt(x) <= v; });
}
Predicate Predicate::Contains(std::string needle) {
  return Predicate([needle = std::move(needle)](const std::string& x) {
    return x.find(needle) != std::string::npos;
  });
}

void AggAccumulate(AggKind kind, const std::string& value, AggValue* acc) {
  const double v = static_cast<double>(AsInt(value));
  switch (kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      acc->value += v;
      break;
    case AggKind::kMin:
      acc->value = acc->count == 0 ? v : std::min(acc->value, v);
      break;
    case AggKind::kMax:
      acc->value = acc->count == 0 ? v : std::max(acc->value, v);
      break;
  }
  ++acc->count;
}

double AggFinalize(AggKind kind, const AggValue& acc) {
  switch (kind) {
    case AggKind::kCount:
      return static_cast<double>(acc.count);
    case AggKind::kAvg:
      return acc.count == 0 ? 0 : acc.value / static_cast<double>(acc.count);
    default:
      return acc.value;
  }
}

Status RowQuery::Scan(const std::function<bool(const Record&)>& fn) {
  // Resolve filter columns to indexes once.
  std::vector<std::pair<int, const Predicate*>> bound;
  for (const auto& [col, pred] : filters_) {
    const int idx = dataset_->schema().IndexOf(col);
    if (idx < 0) return Status::InvalidArgument("unknown column " + col);
    bound.emplace_back(idx, &pred);
  }

  FB_ASSIGN_OR_RETURN(FObject obj,
                      dataset_->db()->Get(dataset_->name(), branch_));
  FB_ASSIGN_OR_RETURN(FMap map, dataset_->db()->GetMap(obj));
  FB_ASSIGN_OR_RETURN(PosTree::Iterator it, map.tree().Begin());
  while (it.Valid()) {
    FB_RETURN_NOT_OK(it.EnsureLoaded());
    FB_ASSIGN_OR_RETURN(Record r, DeserializeRecord(it.value()));
    bool pass = true;
    for (const auto& [idx, pred] : bound) {
      if (static_cast<size_t>(idx) >= r.size() || !(*pred)(r[idx])) {
        pass = false;
        break;
      }
    }
    if (pass && !fn(r)) return Status::OK();
    FB_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

Result<QueryResult> RowQuery::Run() {
  QueryResult result;
  std::vector<int> proj_idx;
  if (projection_.has_value()) {
    for (const std::string& col : *projection_) {
      const int idx = dataset_->schema().IndexOf(col);
      if (idx < 0) return Status::InvalidArgument("unknown column " + col);
      proj_idx.push_back(idx);
      result.columns.push_back(col);
    }
  } else {
    result.columns = dataset_->schema().columns;
  }

  Status s = Scan([&](const Record& r) {
    if (proj_idx.empty()) {
      result.rows.push_back(r);
    } else {
      Record out;
      out.reserve(proj_idx.size());
      for (int idx : proj_idx) {
        out.push_back(static_cast<size_t>(idx) < r.size() ? r[idx] : "");
      }
      result.rows.push_back(std::move(out));
    }
    return !limit_.has_value() || result.rows.size() < *limit_;
  });
  if (!s.ok()) return s;
  return result;
}

Result<AggValue> RowQuery::Aggregate(AggKind kind, const std::string& column) {
  const int idx = dataset_->schema().IndexOf(column);
  if (idx < 0) return Status::InvalidArgument("unknown column " + column);
  AggValue acc;
  Status s = Scan([&](const Record& r) {
    AggAccumulate(kind, static_cast<size_t>(idx) < r.size() ? r[idx] : "0",
                  &acc);
    return true;
  });
  if (!s.ok()) return s;
  return acc;
}

Result<std::map<std::string, AggValue>> RowQuery::GroupBy(
    const std::string& group_column, AggKind kind,
    const std::string& agg_column) {
  const int gidx = dataset_->schema().IndexOf(group_column);
  const int aidx = dataset_->schema().IndexOf(agg_column);
  if (gidx < 0 || aidx < 0) {
    return Status::InvalidArgument("unknown column in group-by");
  }
  std::map<std::string, AggValue> groups;
  Status s = Scan([&](const Record& r) {
    const std::string& g =
        static_cast<size_t>(gidx) < r.size() ? r[gidx] : "";
    AggAccumulate(kind, static_cast<size_t>(aidx) < r.size() ? r[aidx] : "0",
                  &groups[g]);
    return true;
  });
  if (!s.ok()) return s;
  return groups;
}

Result<AggValue> ColumnAggregate(ColumnDataset* dataset,
                                 const std::string& branch, AggKind kind,
                                 const std::string& agg_column,
                                 const std::string& filter_column,
                                 const Predicate* filter) {
  FB_ASSIGN_OR_RETURN(std::vector<std::string> agg_values,
                      dataset->ReadColumn(branch, agg_column));
  AggValue acc;
  if (filter == nullptr || filter_column.empty()) {
    for (const std::string& v : agg_values) AggAccumulate(kind, v, &acc);
    return acc;
  }
  FB_ASSIGN_OR_RETURN(std::vector<std::string> filter_values,
                      dataset->ReadColumn(branch, filter_column));
  if (filter_values.size() != agg_values.size()) {
    return Status::Corruption("column length mismatch");
  }
  for (size_t i = 0; i < agg_values.size(); ++i) {
    if ((*filter)(filter_values[i])) {
      AggAccumulate(kind, agg_values[i], &acc);
    }
  }
  return acc;
}

}  // namespace fb
