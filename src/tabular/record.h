// Relational record encoding shared by the collaborative-analytics layer
// (Section 5.3): a record is an ordered list of string fields, field 0
// being the primary key. Records serialize to the ForkBase Tuple wire
// format (length-prefixed fields), and CSV import/export round-trips.

#ifndef FORKBASE_TABULAR_RECORD_H_
#define FORKBASE_TABULAR_RECORD_H_

#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace fb {

using Record = std::vector<std::string>;

struct Schema {
  std::vector<std::string> columns;  // column 0 is the primary key

  int IndexOf(const std::string& column) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == column) return static_cast<int>(i);
    }
    return -1;
  }
};

// Tuple wire format.
Bytes SerializeRecord(const Record& record);
Result<Record> DeserializeRecord(Slice data);

// CSV (no quoting — generated datasets avoid commas).
std::string RecordToCsv(const Record& record);
Record RecordFromCsv(const std::string& line);

// Deterministic synthetic dataset akin to the paper's: a 12-byte primary
// key, two integer fields, and textual fields padding each record to
// ~180 bytes.
std::vector<Record> GenerateDataset(uint64_t num_records, uint64_t seed = 42);
Schema DatasetSchema();

}  // namespace fb

#endif  // FORKBASE_TABULAR_RECORD_H_
