// POS-Tree tuning knobs (Section 4.3.3): expected chunk sizes are set via
// the pattern bit-widths q (leaves) and r (index nodes); a hard cap of
// alpha times the expected size bounds worst-case node sizes for
// pattern-free content.

#ifndef FORKBASE_POS_TREE_CONFIG_H_
#define FORKBASE_POS_TREE_CONFIG_H_

#include <cstddef>

namespace fb {

struct TreeConfig {
  // q: a leaf boundary occurs when the low q bits of the rolling hash are
  // zero => expected leaf size 2^q bytes (default 4 KB, as in the paper).
  int leaf_pattern_bits = 12;

  // r: an index boundary occurs when the low r bits of a child cid are
  // zero => expected 2^r entries per index node.
  int index_pattern_bits = 6;

  // k: rolling hash window in bytes.
  size_t window = 32;

  // alpha: hard cap multiplier. P(forced split) = e^-alpha (~0.03% at 8).
  size_t size_alpha = 8;

  size_t expected_leaf_bytes() const { return size_t{1} << leaf_pattern_bits; }
  size_t max_leaf_bytes() const { return expected_leaf_bytes() * size_alpha; }
  size_t expected_index_entries() const {
    return size_t{1} << index_pattern_bits;
  }
  size_t max_index_entries() const {
    return expected_index_entries() * size_alpha;
  }
};

}  // namespace fb

#endif  // FORKBASE_POS_TREE_CONFIG_H_
