#include "pos_tree/node.h"

namespace fb {

void EncodeElement(ChunkType leaf_type, Slice key, Slice value, Bytes* out) {
  switch (leaf_type) {
    case ChunkType::kBlob:
      // Raw bytes; `value` carries the byte run.
      AppendSlice(out, value);
      return;
    case ChunkType::kList:
      PutLengthPrefixed(out, value);
      return;
    case ChunkType::kSet:
      PutLengthPrefixed(out, key);
      return;
    case ChunkType::kMap:
      PutLengthPrefixed(out, key);
      PutLengthPrefixed(out, value);
      return;
    default:
      // Index/meta chunks never encode elements.
      return;
  }
}

Status DecodeLeafElements(ChunkType leaf_type, Slice payload,
                          std::vector<ElementView>* out) {
  out->clear();
  ByteReader reader(payload);
  while (!reader.AtEnd()) {
    ElementView e;
    switch (leaf_type) {
      case ChunkType::kList:
        FB_RETURN_NOT_OK(reader.ReadLengthPrefixed(&e.value));
        break;
      case ChunkType::kSet:
        FB_RETURN_NOT_OK(reader.ReadLengthPrefixed(&e.key));
        break;
      case ChunkType::kMap:
        FB_RETURN_NOT_OK(reader.ReadLengthPrefixed(&e.key));
        FB_RETURN_NOT_OK(reader.ReadLengthPrefixed(&e.value));
        break;
      case ChunkType::kBlob:
        return Status::InvalidArgument(
            "Blob leaves are accessed as raw bytes, not elements");
      default:
        return Status::InvalidArgument("not a leaf type");
    }
    out->push_back(e);
  }
  return Status::OK();
}

Result<uint64_t> LeafElementCount(ChunkType leaf_type, Slice payload) {
  if (leaf_type == ChunkType::kBlob) return uint64_t{payload.size()};
  std::vector<ElementView> elems;
  Status s = DecodeLeafElements(leaf_type, payload, &elems);
  if (!s.ok()) return s;
  return uint64_t{elems.size()};
}

void EncodeEntry(const Entry& e, Bytes* out) {
  AppendSlice(out, e.cid.slice());
  PutVarint64(out, e.count);
  PutLengthPrefixed(out, Slice(e.key));
}

Status DecodeIndexEntries(Slice payload, std::vector<Entry>* out) {
  out->clear();
  ByteReader reader(payload);
  while (!reader.AtEnd()) {
    Entry e;
    Slice cid_bytes;
    FB_RETURN_NOT_OK(reader.ReadRaw(Hash::kSize, &cid_bytes));
    Sha256::Digest d;
    std::copy(cid_bytes.begin(), cid_bytes.end(), d.begin());
    e.cid = Hash(d);
    FB_RETURN_NOT_OK(reader.ReadVarint64(&e.count));
    Slice key;
    FB_RETURN_NOT_OK(reader.ReadLengthPrefixed(&key));
    e.key = key.ToBytes();
    out->push_back(std::move(e));
  }
  return Status::OK();
}

}  // namespace fb
