#include "pos_tree/merge.h"

#include <map>

namespace fb {

Result<MergeResult> MergeSorted(const PosTree& base, const PosTree& left,
                                const PosTree& right) {
  if (base.leaf_type() != left.leaf_type() ||
      base.leaf_type() != right.leaf_type() ||
      !IsSortedType(base.leaf_type())) {
    return Status::InvalidArgument("MergeSorted requires three sorted trees "
                                   "of the same type");
  }

  MergeResult result;

  // Trivial cases: one side unchanged.
  if (left.root() == base.root()) {
    result.root = right.root();
    return result;
  }
  if (right.root() == base.root() || left.root() == right.root()) {
    result.root = left.root();
    return result;
  }

  FB_ASSIGN_OR_RETURN(std::vector<KeyDiff> dl, DiffSorted(base, left));
  FB_ASSIGN_OR_RETURN(std::vector<KeyDiff> dr, DiffSorted(base, right));

  // Index the left-side changes by key. KeyDiff.left is the base value,
  // KeyDiff.right the changed side's value.
  std::map<Bytes, const KeyDiff*> left_by_key;
  for (const KeyDiff& d : dl) left_by_key[d.key] = &d;

  // Start from the left tree and fold in right-side changes.
  PosTree merged(left.store(), left.config(), left.leaf_type(), left.root());

  for (const KeyDiff& d : dr) {
    auto it = left_by_key.find(d.key);
    if (it != left_by_key.end()) {
      const KeyDiff& l = *it->second;
      if (l.right == d.right) continue;  // both sides agree
      result.conflicts.push_back(
          MergeConflict{d.key, d.left, l.right, d.right});
      continue;
    }
    // Only the right side touched this key: replay its change.
    if (d.right.has_value()) {
      FB_RETURN_NOT_OK(merged.InsertOrAssign(Slice(d.key), Slice(*d.right)));
    } else {
      Status s = merged.Erase(Slice(d.key));
      if (!s.ok() && !s.IsNotFound()) return s;
    }
  }

  result.root = merged.root();
  return result;
}

Result<MergeResult> MergeBytes(const PosTree& base, const PosTree& left,
                               const PosTree& right) {
  if (base.leaf_type() != ChunkType::kBlob ||
      left.leaf_type() != ChunkType::kBlob ||
      right.leaf_type() != ChunkType::kBlob) {
    return Status::InvalidArgument("MergeBytes requires three Blob trees");
  }

  MergeResult result;
  if (left.root() == base.root()) {
    result.root = right.root();
    return result;
  }
  if (right.root() == base.root() || left.root() == right.root()) {
    result.root = left.root();
    return result;
  }

  FB_ASSIGN_OR_RETURN(RangeDiff dl, DiffBytes(base, left));
  FB_ASSIGN_OR_RETURN(RangeDiff dr, DiffBytes(base, right));
  FB_ASSIGN_OR_RETURN(uint64_t base_n, base.Count());

  // Changed ranges in base coordinates. DiffBytes(base, x) reports
  // a_mid = changed length on the base side, b_mid = on the x side.
  (void)base_n;
  const uint64_t l_start = dl.prefix;
  const uint64_t l_base_end = dl.prefix + dl.a_mid;
  const uint64_t r_start = dr.prefix;
  const uint64_t r_base_end = dr.prefix + dr.a_mid;

  const bool overlap = !(l_base_end <= r_start || r_base_end <= l_start);
  if (overlap) {
    MergeConflict c;
    c.key = ToBytes("byte-range");
    result.conflicts.push_back(std::move(c));
    result.root = left.root();  // resolver patches on top of the left side
    return result;
  }

  // Replay the right side's change onto the left tree. Offsets after the
  // left change shift by (left inserted - left removed).
  FB_ASSIGN_OR_RETURN(Bytes r_new, right.ReadBytes(dr.prefix, dr.b_mid));
  const int64_t shift =
      static_cast<int64_t>(dl.b_mid) - static_cast<int64_t>(dl.a_mid);
  uint64_t apply_at = r_start;
  if (r_start >= l_base_end) {
    apply_at = static_cast<uint64_t>(static_cast<int64_t>(r_start) + shift);
  }

  PosTree merged(left.store(), left.config(), ChunkType::kBlob, left.root());
  FB_RETURN_NOT_OK(merged.SpliceBytes(apply_at, dr.a_mid, Slice(r_new)));
  result.root = merged.root();
  return result;
}

Result<MergeResult> MergeList(const PosTree& base, const PosTree& left,
                              const PosTree& right) {
  if (base.leaf_type() != ChunkType::kList ||
      left.leaf_type() != ChunkType::kList ||
      right.leaf_type() != ChunkType::kList) {
    return Status::InvalidArgument("MergeList requires three List trees");
  }

  MergeResult result;
  if (left.root() == base.root()) {
    result.root = right.root();
    return result;
  }
  if (right.root() == base.root() || left.root() == right.root()) {
    result.root = left.root();
    return result;
  }

  FB_ASSIGN_OR_RETURN(RangeDiff dl, DiffList(base, left));
  FB_ASSIGN_OR_RETURN(RangeDiff dr, DiffList(base, right));

  const uint64_t l_start = dl.prefix;
  const uint64_t l_base_end = dl.prefix + dl.a_mid;
  const uint64_t r_start = dr.prefix;
  const uint64_t r_base_end = dr.prefix + dr.a_mid;

  if (!(l_base_end <= r_start || r_base_end <= l_start)) {
    MergeConflict c;
    c.key = ToBytes("element-range");
    result.conflicts.push_back(std::move(c));
    result.root = left.root();
    return result;
  }

  // Materialize the right side's inserted elements.
  std::vector<Element> r_new;
  {
    FB_ASSIGN_OR_RETURN(PosTree::Iterator it, right.Begin());
    uint64_t idx = 0;
    while (it.Valid() && idx < dr.prefix + dr.b_mid) {
      if (idx >= dr.prefix) {
        FB_RETURN_NOT_OK(it.EnsureLoaded());
        Element e;
        e.value = it.value().ToBytes();
        r_new.push_back(std::move(e));
      }
      FB_RETURN_NOT_OK(it.Next());
      ++idx;
    }
  }

  const int64_t shift =
      static_cast<int64_t>(dl.b_mid) - static_cast<int64_t>(dl.a_mid);
  uint64_t apply_at = r_start;
  if (r_start >= l_base_end) {
    apply_at = static_cast<uint64_t>(static_cast<int64_t>(r_start) + shift);
  }

  PosTree merged(left.store(), left.config(), ChunkType::kList, left.root());
  FB_RETURN_NOT_OK(merged.SpliceElements(apply_at, dr.a_mid, r_new));
  result.root = merged.root();
  return result;
}

}  // namespace fb
