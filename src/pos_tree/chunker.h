// Pattern-based chunking for POS-Tree construction (Section 4.3, Alg. 1).
//
// LeafChunker consumes a stream of serialized elements and cuts leaf
// chunks where the rolling-hash pattern P fires (checked at element
// boundaries only — a pattern inside an element extends the boundary to
// the element's end, so no element spans two chunks). The rolling hash is
// reset at every emitted boundary, making each boundary a deterministic
// function of the chunk's own content; this is what lets an incremental
// splice resynchronize with the old chunk sequence.
//
// BuildIndexLevels stacks index nodes bottom-up using the cheaper pattern
// P' over child cids (low r bits zero) until a single root remains.

#ifndef FORKBASE_POS_TREE_CHUNKER_H_
#define FORKBASE_POS_TREE_CHUNKER_H_

#include <vector>

#include "chunk/chunk_store.h"
#include "pos_tree/config.h"
#include "pos_tree/node.h"
#include "util/rolling_hash.h"

namespace fb {

class LeafChunker {
 public:
  // Completed leaf chunks are buffered in a BatchedChunkWriter and
  // written via PutBatch, amortizing the store's per-call locking on
  // bulk loads.
  LeafChunker(ChunkStore* store, ChunkType leaf_type, const TreeConfig& cfg)
      : leaf_type_(leaf_type),
        cfg_(cfg),
        hasher_(cfg.window),
        writer_(store) {}

  // Appends one serialized element contributing `count_units` base
  // elements (1 for List/Set/Map). `key` is the element's ordering key
  // (empty for unsorted types). May emit a completed leaf chunk.
  Status AppendElement(Slice element_bytes, Slice key, uint64_t count_units);

  // Blob fast path: appends raw bytes, each byte being an element.
  Status AppendRaw(Slice bytes);

  // True when no partial chunk is buffered, i.e. the stream position is a
  // chunk boundary. Used by splice resynchronization.
  bool AtBoundary() const { return buf_.empty(); }

  // Flushes the trailing partial chunk (which legitimately may not end
  // with a pattern) and writes every still-buffered chunk to the store.
  // Must be called before any emitted leaf is read back; callers that
  // abandon chunking early (splice resynchronization) call it too, where
  // it only drains the buffered chunks.
  Status Finish();

  // Entries for all leaves emitted so far, in order. Entries are valid
  // immediately (cids are computed locally), but the chunks themselves
  // are only guaranteed to be in the store after Finish().
  std::vector<Entry>& entries() { return entries_; }

 private:
  Status Commit();

  ChunkType leaf_type_;
  TreeConfig cfg_;
  RollingHash hasher_;

  Bytes buf_;
  uint64_t buf_count_ = 0;
  Bytes last_key_;
  std::vector<Entry> entries_;
  BatchedChunkWriter writer_;
};

// Builds all index levels above `leaves` and returns the root cid.
// An empty leaf list produces (and stores) the canonical empty leaf chunk.
// A single leaf becomes the root itself.
Result<Hash> BuildIndexLevels(ChunkStore* store, const TreeConfig& cfg,
                              ChunkType leaf_type, std::vector<Entry> level);

}  // namespace fb

#endif  // FORKBASE_POS_TREE_CHUNKER_H_
