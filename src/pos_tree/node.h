// On-chunk node formats for the POS-Tree.
//
// Leaf chunks hold serialized elements back-to-back:
//   Blob : raw bytes (one element == one byte)
//   List : [varint len][bytes] per element
//   Set  : [varint klen][key] per element, sorted by key
//   Map  : [varint klen][key][varint vlen][value] per entry, sorted by key
//
// Index chunks (UIndex for Blob/List, SIndex for Set/Map) hold entries:
//   [cid 32B][varint count][varint klen][key]
// where `count` is the number of base elements in the subtree and `key` is
// the subtree's maximum key (empty for unsorted types).

#ifndef FORKBASE_POS_TREE_NODE_H_
#define FORKBASE_POS_TREE_NODE_H_

#include <vector>

#include "chunk/chunk.h"
#include "util/codec.h"
#include "util/status.h"

namespace fb {

// True for the four leaf chunk types.
inline bool IsLeafType(ChunkType t) {
  return t == ChunkType::kBlob || t == ChunkType::kList ||
         t == ChunkType::kSet || t == ChunkType::kMap;
}
inline bool IsIndexType(ChunkType t) {
  return t == ChunkType::kUIndex || t == ChunkType::kSIndex;
}
// True for types whose elements carry an ordering key.
inline bool IsSortedType(ChunkType t) {
  return t == ChunkType::kSet || t == ChunkType::kMap;
}
// The index chunk type paired with a leaf type.
inline ChunkType IndexTypeFor(ChunkType leaf) {
  return IsSortedType(leaf) ? ChunkType::kSIndex : ChunkType::kUIndex;
}

// A decoded element. For Map, `key`/`value` are views into the leaf
// payload; for Set only `key` is set; for List `value` holds the element
// bytes; Blob leaves are not decoded element-wise (fast path on raw bytes).
struct ElementView {
  Slice key;
  Slice value;
};

// An owned element, used when splicing new content into a tree.
struct Element {
  Bytes key;
  Bytes value;
};

// Serializes one element in its on-chunk form.
void EncodeElement(ChunkType leaf_type, Slice key, Slice value, Bytes* out);

// Decodes all elements of a non-Blob leaf payload.
Status DecodeLeafElements(ChunkType leaf_type, Slice payload,
                          std::vector<ElementView>* out);

// Number of base elements in a leaf chunk (bytes for Blob).
Result<uint64_t> LeafElementCount(ChunkType leaf_type, Slice payload);

// An index entry describing one child node.
struct Entry {
  Hash cid;
  uint64_t count = 0;  // base elements in the subtree
  Bytes key;           // max key in the subtree (sorted types only)
};

// Serializes one index entry.
void EncodeEntry(const Entry& e, Bytes* out);

// Decodes all entries of an index chunk payload.
Status DecodeIndexEntries(Slice payload, std::vector<Entry>* out);

}  // namespace fb

#endif  // FORKBASE_POS_TREE_NODE_H_
