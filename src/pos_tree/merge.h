// Type-specific three-way merge over POS-Trees (Section 4.5.2).
//
// Given two heads v1, v2 and their least common ancestor base, the merge
// applies both sides' changes onto the base. Keys (or element ranges)
// modified on both sides inconsistently are reported as conflicts; the
// caller (the API layer) resolves them via built-in or custom resolvers.

#ifndef FORKBASE_POS_TREE_MERGE_H_
#define FORKBASE_POS_TREE_MERGE_H_

#include <optional>
#include <vector>

#include "pos_tree/diff.h"
#include "pos_tree/tree.h"

namespace fb {

// One conflicting key: the base value and the two sides' values (nullopt
// means absent on that side).
struct MergeConflict {
  Bytes key;
  std::optional<Bytes> base;
  std::optional<Bytes> left;
  std::optional<Bytes> right;
};

struct MergeResult {
  // The merged tree. On a clean merge it contains both sides' changes; with
  // conflicts it contains all non-conflicting changes and keeps the left
  // side's content for conflicting keys/ranges, so a resolver can patch the
  // conflicts on top of it.
  Hash root;
  std::vector<MergeConflict> conflicts;  // empty => clean merge
  bool clean() const { return conflicts.empty(); }
};

// Three-way merge of sorted trees (Map or Set).
Result<MergeResult> MergeSorted(const PosTree& base, const PosTree& left,
                                const PosTree& right);

// Three-way merge of Blob trees: merges when the two sides' changed byte
// ranges (relative to base) do not overlap; otherwise reports one
// conflict keyed "byte-range".
Result<MergeResult> MergeBytes(const PosTree& base, const PosTree& left,
                               const PosTree& right);

// Three-way merge of List trees, range-based like MergeBytes.
Result<MergeResult> MergeList(const PosTree& base, const PosTree& left,
                              const PosTree& right);

}  // namespace fb

#endif  // FORKBASE_POS_TREE_MERGE_H_
