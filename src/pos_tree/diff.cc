#include "pos_tree/diff.h"

#include <algorithm>
#include <unordered_set>

namespace fb {

Result<std::vector<KeyDiff>> DiffSorted(const PosTree& a, const PosTree& b) {
  if (a.leaf_type() != b.leaf_type() || !IsSortedType(a.leaf_type())) {
    return Status::InvalidArgument("DiffSorted requires two sorted trees "
                                   "of the same type");
  }
  std::vector<KeyDiff> out;
  if (a.root() == b.root()) return out;

  FB_ASSIGN_OR_RETURN(PosTree::Iterator ia, a.Begin());
  FB_ASSIGN_OR_RETURN(PosTree::Iterator ib, b.Begin());

  auto emit_left = [&](const PosTree::Iterator& it) {
    out.push_back(KeyDiff{it.key().ToBytes(),
                          std::optional<Bytes>(it.value().ToBytes()),
                          std::nullopt});
  };
  auto emit_right = [&](const PosTree::Iterator& it) {
    out.push_back(KeyDiff{it.key().ToBytes(), std::nullopt,
                          std::optional<Bytes>(it.value().ToBytes())});
  };

  while (ia.Valid() && ib.Valid()) {
    // Fast path: identical leaves at aligned leaf starts are skipped
    // wholesale without decoding their elements pairwise.
    if (ia.AtLeafStart() && ib.AtLeafStart() && ia.leaf_cid() == ib.leaf_cid()) {
      FB_RETURN_NOT_OK(ia.SkipLeaf());
      FB_RETURN_NOT_OK(ib.SkipLeaf());
      continue;
    }
    const int cmp = ia.key().compare(ib.key());
    if (cmp < 0) {
      emit_left(ia);
      FB_RETURN_NOT_OK(ia.Next());
    } else if (cmp > 0) {
      emit_right(ib);
      FB_RETURN_NOT_OK(ib.Next());
    } else {
      if (ia.value() != ib.value()) {
        out.push_back(KeyDiff{ia.key().ToBytes(),
                              std::optional<Bytes>(ia.value().ToBytes()),
                              std::optional<Bytes>(ib.value().ToBytes())});
      }
      FB_RETURN_NOT_OK(ia.Next());
      FB_RETURN_NOT_OK(ib.Next());
    }
  }
  while (ia.Valid()) {
    emit_left(ia);
    FB_RETURN_NOT_OK(ia.Next());
  }
  while (ib.Valid()) {
    emit_right(ib);
    FB_RETURN_NOT_OK(ib.Next());
  }
  return out;
}

namespace {

// Shared prefix/suffix diff over materialized sequences. `eq(i, j)` tests
// a[i] == b[j].
template <typename Eq>
RangeDiff PrefixSuffixDiff(uint64_t an, uint64_t bn, Eq eq) {
  RangeDiff d;
  uint64_t p = 0;
  const uint64_t min_n = std::min(an, bn);
  while (p < min_n && eq(p, p)) ++p;
  if (p == an && p == bn) {
    d.identical = true;
    d.prefix = p;
    return d;
  }
  uint64_t s = 0;
  while (s < min_n - p && eq(an - 1 - s, bn - 1 - s)) ++s;
  d.identical = false;
  d.prefix = p;
  d.a_mid = an - p - s;
  d.b_mid = bn - p - s;
  return d;
}

}  // namespace

Result<RangeDiff> DiffBytes(const PosTree& a, const PosTree& b) {
  if (a.leaf_type() != ChunkType::kBlob || b.leaf_type() != ChunkType::kBlob) {
    return Status::InvalidArgument("DiffBytes requires two Blob trees");
  }
  RangeDiff d;
  if (a.root() == b.root()) {
    FB_ASSIGN_OR_RETURN(d.prefix, a.Count());
    return d;
  }

  // Skip equal-cid leaves from the front and back first, so only the
  // genuinely differing middle bytes are materialized.
  std::vector<Entry> la, lb;
  Status s = a.LoadLeafEntries(&la);
  if (!s.ok()) return s;
  s = b.LoadLeafEntries(&lb);
  if (!s.ok()) return s;

  size_t fa = 0, fb = 0;
  uint64_t skipped_front = 0;
  while (fa < la.size() && fb < lb.size() && la[fa].cid == lb[fb].cid) {
    skipped_front += la[fa].count;
    ++fa;
    ++fb;
  }
  size_t ra = la.size(), rb = lb.size();
  uint64_t skipped_back = 0;
  while (ra > fa && rb > fb && la[ra - 1].cid == lb[rb - 1].cid) {
    skipped_back += la[ra - 1].count;
    --ra;
    --rb;
  }

  uint64_t mid_a_len = 0, mid_b_len = 0;
  for (size_t i = fa; i < ra; ++i) mid_a_len += la[i].count;
  for (size_t i = fb; i < rb; ++i) mid_b_len += lb[i].count;

  FB_ASSIGN_OR_RETURN(Bytes ma, a.ReadBytes(skipped_front, mid_a_len));
  FB_ASSIGN_OR_RETURN(Bytes mb, b.ReadBytes(skipped_front, mid_b_len));

  RangeDiff inner = PrefixSuffixDiff(
      ma.size(), mb.size(), [&](uint64_t i, uint64_t j) {
        return ma[static_cast<size_t>(i)] == mb[static_cast<size_t>(j)];
      });
  d.identical = inner.identical && mid_a_len == mid_b_len;
  d.prefix = skipped_front + inner.prefix;
  d.a_mid = inner.a_mid;
  d.b_mid = inner.b_mid;
  (void)skipped_back;
  return d;
}

Result<RangeDiff> DiffList(const PosTree& a, const PosTree& b) {
  if (a.leaf_type() != ChunkType::kList || b.leaf_type() != ChunkType::kList) {
    return Status::InvalidArgument("DiffList requires two List trees");
  }
  RangeDiff d;
  if (a.root() == b.root()) {
    FB_ASSIGN_OR_RETURN(d.prefix, a.Count());
    return d;
  }
  // Lists used by the applications are modest (columns are chunk-level
  // deduplicated anyway), so materialize elements and prefix/suffix diff.
  std::vector<Bytes> ea, eb;
  {
    FB_ASSIGN_OR_RETURN(PosTree::Iterator it, a.Begin());
    while (it.Valid()) {
      ea.push_back(it.value().ToBytes());
      Status s = it.Next();
      if (!s.ok()) return s;
    }
  }
  {
    FB_ASSIGN_OR_RETURN(PosTree::Iterator it, b.Begin());
    while (it.Valid()) {
      eb.push_back(it.value().ToBytes());
      Status s = it.Next();
      if (!s.ok()) return s;
    }
  }
  return PrefixSuffixDiff(ea.size(), eb.size(), [&](uint64_t i, uint64_t j) {
    return ea[static_cast<size_t>(i)] == eb[static_cast<size_t>(j)];
  });
}

Result<ChunkOverlap> ComputeChunkOverlap(const PosTree& a, const PosTree& b) {
  std::vector<Hash> ca, cb;
  Status s = a.CollectChunkIds(&ca);
  if (!s.ok()) return s;
  s = b.CollectChunkIds(&cb);
  if (!s.ok()) return s;
  std::unordered_set<Hash> sa(ca.begin(), ca.end());
  std::unordered_set<Hash> sb(cb.begin(), cb.end());
  ChunkOverlap o;
  for (const Hash& h : sa) {
    if (sb.count(h) > 0) {
      ++o.shared;
    } else {
      ++o.only_a;
    }
  }
  for (const Hash& h : sb) {
    if (sa.count(h) == 0) ++o.only_b;
  }
  return o;
}

}  // namespace fb
