// Structural diff between two POS-Trees (Section 4.3.1: "comparing two
// trees can be done efficiently by recursively comparing the cids").
//
// For sorted trees the diff walks both element sequences in key order,
// skipping whole leaves whenever both iterators stand at the start of
// leaves with equal cids — identical content contributes no differences.
// For Blob/List the diff reports the single changed middle range after
// maximal common prefix/suffix, again skipping equal-cid leaves.

#ifndef FORKBASE_POS_TREE_DIFF_H_
#define FORKBASE_POS_TREE_DIFF_H_

#include <optional>
#include <vector>

#include "pos_tree/tree.h"

namespace fb {

// One differing key. `left`/`right` are the values in the first/second
// tree; nullopt means the key is absent on that side. For Set, present
// keys carry an empty value.
struct KeyDiff {
  Bytes key;
  std::optional<Bytes> left;
  std::optional<Bytes> right;
};

// Key-wise diff of two sorted trees (Map or Set) of the same type.
Result<std::vector<KeyDiff>> DiffSorted(const PosTree& a, const PosTree& b);

// The changed middle range after removing the maximal common prefix and
// suffix (in base elements: bytes for Blob, elements for List).
struct RangeDiff {
  uint64_t prefix = 0;   // length of the common prefix
  uint64_t a_mid = 0;    // differing length in `a`
  uint64_t b_mid = 0;    // differing length in `b`
  bool identical = true; // true when the trees are equal
};

// Prefix/suffix diff of two Blob trees.
Result<RangeDiff> DiffBytes(const PosTree& a, const PosTree& b);

// Prefix/suffix diff of two List trees.
Result<RangeDiff> DiffList(const PosTree& a, const PosTree& b);

// Number of chunks unique to `a`, unique to `b`, and shared — the dedup
// measure used by storage benchmarks.
struct ChunkOverlap {
  size_t only_a = 0;
  size_t only_b = 0;
  size_t shared = 0;
};
Result<ChunkOverlap> ComputeChunkOverlap(const PosTree& a, const PosTree& b);

}  // namespace fb

#endif  // FORKBASE_POS_TREE_DIFF_H_
