#include "pos_tree/tree.h"

#include <algorithm>

namespace fb {

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Result<Hash> PosTree::BuildFromElements(ChunkStore* store,
                                        const TreeConfig& cfg,
                                        ChunkType leaf_type,
                                        const std::vector<Element>& elements) {
  LeafChunker chunker(store, leaf_type, cfg);
  Bytes encoded;
  for (const Element& e : elements) {
    encoded.clear();
    EncodeElement(leaf_type, Slice(e.key), Slice(e.value), &encoded);
    Status s = chunker.AppendElement(Slice(encoded), Slice(e.key), 1);
    if (!s.ok()) return s;
  }
  Status s = chunker.Finish();
  if (!s.ok()) return s;
  return BuildIndexLevels(store, cfg, leaf_type, std::move(chunker.entries()));
}

Result<Hash> PosTree::BuildFromBytes(ChunkStore* store, const TreeConfig& cfg,
                                     Slice bytes) {
  LeafChunker chunker(store, ChunkType::kBlob, cfg);
  Status s = chunker.AppendRaw(bytes);
  if (!s.ok()) return s;
  s = chunker.Finish();
  if (!s.ok()) return s;
  return BuildIndexLevels(store, cfg, ChunkType::kBlob,
                          std::move(chunker.entries()));
}

Result<Hash> PosTree::EmptyRoot(ChunkStore* store, ChunkType leaf_type) {
  return store->Put(Chunk(leaf_type, {}));
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

Status PosTree::ReadNode(const Hash& cid, Chunk* chunk) const {
  return store_->Get(cid, chunk);
}

Result<uint64_t> PosTree::Count() const {
  Chunk root;
  Status s = ReadNode(root_, &root);
  if (!s.ok()) return s;
  if (IsLeafType(root.type())) {
    return LeafElementCount(root.type(), root.payload());
  }
  std::vector<Entry> entries;
  s = DecodeIndexEntries(root.payload(), &entries);
  if (!s.ok()) return s;
  uint64_t total = 0;
  for (const Entry& e : entries) total += e.count;
  return total;
}

Result<size_t> PosTree::Height() const {
  size_t h = 1;
  Hash cur = root_;
  for (;;) {
    Chunk chunk;
    Status s = ReadNode(cur, &chunk);
    if (!s.ok()) return s;
    if (IsLeafType(chunk.type())) return h;
    std::vector<Entry> entries;
    s = DecodeIndexEntries(chunk.payload(), &entries);
    if (!s.ok()) return s;
    if (entries.empty()) return Status::Corruption("empty index node");
    cur = entries.front().cid;
    ++h;
  }
}

Status PosTree::FindLeafByKey(Slice key, Chunk* leaf) const {
  Hash cur = root_;
  for (;;) {
    Chunk chunk;
    FB_RETURN_NOT_OK(ReadNode(cur, &chunk));
    if (IsLeafType(chunk.type())) {
      *leaf = std::move(chunk);
      return Status::OK();
    }
    std::vector<Entry> entries;
    FB_RETURN_NOT_OK(DecodeIndexEntries(chunk.payload(), &entries));
    if (entries.empty()) return Status::Corruption("empty index node");
    // Entries are ordered by max subtree key: descend into the first
    // entry whose max key >= target, or the last entry otherwise.
    size_t pick = entries.size() - 1;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (Slice(entries[i].key) >= key) {
        pick = i;
        break;
      }
    }
    cur = entries[pick].cid;
  }
}

Result<std::optional<Bytes>> PosTree::Find(Slice key) const {
  if (!IsSortedType(leaf_type_)) {
    return Status::InvalidArgument("Find requires a sorted type");
  }
  Chunk leaf;
  Status s = FindLeafByKey(key, &leaf);
  if (!s.ok()) return s;
  std::vector<ElementView> elems;
  s = DecodeLeafElements(leaf.type(), leaf.payload(), &elems);
  if (!s.ok()) return s;
  const auto it = std::lower_bound(
      elems.begin(), elems.end(), key,
      [](const ElementView& e, const Slice& k) { return e.key < k; });
  if (it == elems.end() || it->key != key) {
    return std::optional<Bytes>{};
  }
  return std::optional<Bytes>{it->value.ToBytes()};
}

Status PosTree::LoadLeafEntries(std::vector<Entry>* out) const {
  out->clear();
  // DFS over index nodes only; leaves are never fetched.
  struct Frame {
    std::vector<Entry> entries;
    size_t next = 0;
  };
  Chunk root;
  FB_RETURN_NOT_OK(ReadNode(root_, &root));
  if (IsLeafType(root.type())) {
    FB_ASSIGN_OR_RETURN(uint64_t count,
                        LeafElementCount(root.type(), root.payload()));
    Bytes last_key;
    if (IsSortedType(root.type()) && count > 0) {
      std::vector<ElementView> elems;
      FB_RETURN_NOT_OK(DecodeLeafElements(root.type(), root.payload(), &elems));
      last_key = elems.back().key.ToBytes();
    }
    if (count > 0 || true) {
      // The canonical empty tree still has one (empty) leaf entry so that
      // splice-from-empty goes through the normal path.
      out->push_back(Entry{root_, count, std::move(last_key)});
    }
    return Status::OK();
  }

  // Every root-to-leaf path has the same length (levels are built
  // uniformly), so with the height known in advance the walk can
  // classify entries by depth and never needs to fetch leaf chunks.
  FB_ASSIGN_OR_RETURN(const size_t height, Height());

  // Breadth-first, one level at a time: every index node of a level is
  // fetched in ONE GetBatch, so against a remote or peer-resolving
  // store the traversal costs one round trip per level, not one per
  // node. Entries stay in left-to-right order throughout.
  std::vector<Entry> level;
  FB_RETURN_NOT_OK(DecodeIndexEntries(root.payload(), &level));
  for (size_t depth = 1; depth + 1 < height; ++depth) {
    std::vector<Hash> cids;
    cids.reserve(level.size());
    for (const Entry& e : level) cids.push_back(e.cid);
    std::vector<Chunk> chunks;
    FB_RETURN_NOT_OK(store_->GetBatch(cids, &chunks));
    std::vector<Entry> next;
    for (const Chunk& chunk : chunks) {
      if (!IsIndexType(chunk.type())) {
        return Status::Corruption("expected index node above leaf level");
      }
      std::vector<Entry> entries;
      FB_RETURN_NOT_OK(DecodeIndexEntries(chunk.payload(), &entries));
      next.insert(next.end(), std::make_move_iterator(entries.begin()),
                  std::make_move_iterator(entries.end()));
    }
    level = std::move(next);
  }
  *out = std::move(level);
  return Status::OK();
}

Status PosTree::CollectChunkIds(std::vector<Hash>* out) const {
  out->clear();
  std::vector<Hash> pending{root_};
  while (!pending.empty()) {
    const Hash cid = pending.back();
    pending.pop_back();
    out->push_back(cid);
    Chunk chunk;
    FB_RETURN_NOT_OK(ReadNode(cid, &chunk));
    if (IsIndexType(chunk.type())) {
      std::vector<Entry> entries;
      FB_RETURN_NOT_OK(DecodeIndexEntries(chunk.payload(), &entries));
      for (const Entry& e : entries) pending.push_back(e.cid);
    }
  }
  return Status::OK();
}

Status PosTree::VerifyIntegrity() const {
  std::vector<Hash> cids;
  FB_RETURN_NOT_OK(CollectChunkIds(&cids));
  for (const Hash& cid : cids) {
    Chunk chunk;
    FB_RETURN_NOT_OK(ReadNode(cid, &chunk));
    if (chunk.ComputeCid() != cid) {
      return Status::Corruption("chunk " + cid.ToShortHex() +
                                " fails integrity check");
    }
  }
  return Status::OK();
}

size_t PosTree::LeafIndexForPos(const std::vector<Entry>& leaves,
                                uint64_t pos, uint64_t* leaf_start) {
  uint64_t cum = 0;
  for (size_t i = 0; i < leaves.size(); ++i) {
    if (cum + leaves[i].count > pos) {
      *leaf_start = cum;
      return i;
    }
    cum += leaves[i].count;
  }
  *leaf_start = cum;
  return leaves.size();
}

Result<Bytes> PosTree::ReadBytes(uint64_t pos, uint64_t n) const {
  if (leaf_type_ != ChunkType::kBlob) {
    return Status::InvalidArgument("ReadBytes requires Blob");
  }
  std::vector<Entry> leaves;
  Status s = LoadLeafEntries(&leaves);
  if (!s.ok()) return s;
  // Collect every overlapping leaf first, then fetch them in ONE
  // GetBatch: against a remote or peer-resolving store the whole read
  // costs one round trip instead of one per leaf.
  struct Want {
    uint64_t from;
    uint64_t len;
  };
  std::vector<Hash> cids;
  std::vector<Want> wants;
  uint64_t cum = 0;
  for (const Entry& leaf : leaves) {
    const uint64_t leaf_end = cum + leaf.count;
    if (leaf_end > pos && cum < pos + n) {
      const uint64_t from = pos > cum ? pos - cum : 0;
      const uint64_t to =
          std::min<uint64_t>(leaf.count, pos + n > cum ? pos + n - cum : 0);
      if (to > from) {
        cids.push_back(leaf.cid);
        wants.push_back({from, to - from});
      }
    }
    cum = leaf_end;
    if (cum >= pos + n) break;
  }
  std::vector<Chunk> chunks;
  s = store_->GetBatch(cids, &chunks);
  if (!s.ok()) return s;
  Bytes out;
  for (size_t i = 0; i < cids.size(); ++i) {
    const Slice part =
        chunks[i].payload().subslice(wants[i].from, wants[i].len);
    AppendSlice(&out, part);
  }
  return out;
}

Result<Bytes> PosTree::GetElement(uint64_t index) const {
  if (leaf_type_ != ChunkType::kList) {
    return Status::InvalidArgument("GetElement requires List");
  }
  std::vector<Entry> leaves;
  Status s = LoadLeafEntries(&leaves);
  if (!s.ok()) return s;
  uint64_t leaf_start = 0;
  const size_t li = LeafIndexForPos(leaves, index, &leaf_start);
  if (li >= leaves.size()) return Status::OutOfRange("list index");
  Chunk chunk;
  s = ReadNode(leaves[li].cid, &chunk);
  if (!s.ok()) return s;
  std::vector<ElementView> elems;
  s = DecodeLeafElements(chunk.type(), chunk.payload(), &elems);
  if (!s.ok()) return s;
  const size_t off = static_cast<size_t>(index - leaf_start);
  if (off >= elems.size()) return Status::Corruption("count mismatch");
  return elems[off].value.ToBytes();
}

// ---------------------------------------------------------------------------
// Iterator
// ---------------------------------------------------------------------------

Status PosTree::Iterator::EnsureLoaded() const {
  if (loaded_ || leaf_idx_ >= leaves_.size()) return Status::OK();
  FB_RETURN_NOT_OK(tree_->ReadNode(leaves_[leaf_idx_].cid, &current_));
  FB_RETURN_NOT_OK(
      DecodeLeafElements(current_.type(), current_.payload(), &elems_));
  loaded_ = true;
  return Status::OK();
}

void PosTree::Iterator::MustLoad() const {
  const Status s = EnsureLoaded();
  assert(s.ok());
  (void)s;
}

Status PosTree::Iterator::Next() {
  FB_RETURN_NOT_OK(EnsureLoaded());
  ++elem_idx_;
  if (elem_idx_ >= elems_.size()) {
    ++leaf_idx_;
    elem_idx_ = 0;
    loaded_ = false;
  }
  return Status::OK();
}

Status PosTree::Iterator::SkipLeaf() {
  ++leaf_idx_;
  elem_idx_ = 0;
  loaded_ = false;
  return Status::OK();
}

Result<PosTree::Iterator> PosTree::Begin() const {
  if (leaf_type_ == ChunkType::kBlob) {
    return Status::InvalidArgument("Blob is iterated via ReadBytes");
  }
  Iterator it;
  it.tree_ = this;
  std::vector<Entry> leaves;
  Status s = LoadLeafEntries(&leaves);
  if (!s.ok()) return s;
  // Drop the placeholder entry of the canonical empty tree so that every
  // positioned leaf is non-empty.
  for (Entry& e : leaves) {
    if (e.count > 0) it.leaves_.push_back(std::move(e));
  }
  return it;
}

// ---------------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------------

Status PosTree::RebuildFromLeaves(std::vector<Entry> leaves) {
  // Drop placeholder entries for empty leaves that can appear when the
  // tree was previously empty.
  std::vector<Entry> filtered;
  filtered.reserve(leaves.size());
  for (Entry& e : leaves) {
    if (e.count > 0) filtered.push_back(std::move(e));
  }
  FB_ASSIGN_OR_RETURN(
      root_, BuildIndexLevels(store_, cfg_, leaf_type_, std::move(filtered)));
  return Status::OK();
}

Status PosTree::SpliceElements(uint64_t pos, uint64_t n_delete,
                               const std::vector<Element>& insert) {
  if (leaf_type_ == ChunkType::kBlob) {
    return Status::InvalidArgument("use SpliceBytes for Blob");
  }
  std::vector<Entry> leaves;
  FB_RETURN_NOT_OK(LoadLeafEntries(&leaves));
  uint64_t total = 0;
  for (const Entry& e : leaves) total += e.count;
  if (pos > total) return Status::OutOfRange("splice position");
  n_delete = std::min<uint64_t>(n_delete, total - pos);

  // First leaf whose content is affected. A pure append re-chunks the
  // last leaf, because its final boundary was an end-of-stream cut, not
  // necessarily a pattern.
  uint64_t start_base = 0;
  size_t start_leaf = LeafIndexForPos(leaves, pos, &start_base);
  if (start_leaf == leaves.size() && !leaves.empty()) {
    --start_leaf;
    start_base -= leaves[start_leaf].count;
  }

  LeafChunker chunker(store_, leaf_type_, cfg_);
  Bytes encoded;
  auto feed_element = [&](Slice key, Slice value) -> Status {
    encoded.clear();
    EncodeElement(leaf_type_, key, value, &encoded);
    return chunker.AppendElement(Slice(encoded), key, 1);
  };

  std::vector<Entry> out(leaves.begin(),
                         leaves.begin() + static_cast<long>(start_leaf));

  uint64_t global = start_base;  // element index of next old element
  uint64_t del_left = n_delete;
  bool inserted = false;
  bool resynced = false;

  for (size_t li = start_leaf; li < leaves.size(); ++li) {
    // Resynchronization: once the edit is fully applied and the chunker
    // sits exactly on a chunk boundary at an old leaf start, every
    // remaining old leaf is reused verbatim.
    if (inserted && del_left == 0 && global >= pos && chunker.AtBoundary() &&
        !chunker.entries().empty()) {
      out.insert(out.end(), leaves.begin() + static_cast<long>(li),
                 leaves.end());
      resynced = true;
      break;
    }

    Chunk chunk;
    FB_RETURN_NOT_OK(ReadNode(leaves[li].cid, &chunk));
    std::vector<ElementView> elems;
    FB_RETURN_NOT_OK(
        DecodeLeafElements(chunk.type(), chunk.payload(), &elems));
    for (const ElementView& e : elems) {
      if (!inserted && global == pos) {
        for (const Element& ins : insert) {
          FB_RETURN_NOT_OK(feed_element(Slice(ins.key), Slice(ins.value)));
        }
        inserted = true;
      }
      if (global >= pos && del_left > 0) {
        --del_left;  // element deleted: skip it
      } else {
        FB_RETURN_NOT_OK(feed_element(e.key, e.value));
      }
      ++global;
    }
  }

  if (!resynced) {
    if (!inserted) {
      // Append at the very end (pos == total), or empty tree.
      for (const Element& ins : insert) {
        FB_RETURN_NOT_OK(feed_element(Slice(ins.key), Slice(ins.value)));
      }
    }
    FB_RETURN_NOT_OK(chunker.Finish());
    out.insert(out.end(), chunker.entries().begin(), chunker.entries().end());
  } else {
    // Chunks produced before the resync point. The chunker sits on a
    // boundary here, so Finish() only drains its batched writes.
    FB_RETURN_NOT_OK(chunker.Finish());
    out.insert(out.begin() + static_cast<long>(start_leaf),
               chunker.entries().begin(), chunker.entries().end());
  }

  return RebuildFromLeaves(std::move(out));
}

Status PosTree::SpliceBytes(uint64_t pos, uint64_t n_delete, Slice insert) {
  if (leaf_type_ != ChunkType::kBlob) {
    return Status::InvalidArgument("SpliceBytes requires Blob");
  }
  std::vector<Entry> leaves;
  FB_RETURN_NOT_OK(LoadLeafEntries(&leaves));
  uint64_t total = 0;
  for (const Entry& e : leaves) total += e.count;
  if (pos > total) return Status::OutOfRange("splice position");
  n_delete = std::min<uint64_t>(n_delete, total - pos);

  uint64_t start_base = 0;
  size_t start_leaf = LeafIndexForPos(leaves, pos, &start_base);
  if (start_leaf == leaves.size() && !leaves.empty()) {
    --start_leaf;
    start_base -= leaves[start_leaf].count;
  }

  LeafChunker chunker(store_, ChunkType::kBlob, cfg_);
  std::vector<Entry> out(leaves.begin(),
                         leaves.begin() + static_cast<long>(start_leaf));

  uint64_t global = start_base;
  uint64_t del_left = n_delete;
  bool inserted = false;
  bool resynced = false;

  for (size_t li = start_leaf; li < leaves.size(); ++li) {
    if (inserted && del_left == 0 && global >= pos && chunker.AtBoundary() &&
        !chunker.entries().empty()) {
      out.insert(out.end(), leaves.begin() + static_cast<long>(li),
                 leaves.end());
      resynced = true;
      break;
    }

    Chunk chunk;
    FB_RETURN_NOT_OK(ReadNode(leaves[li].cid, &chunk));
    const Slice payload = chunk.payload();
    uint64_t off = 0;
    const uint64_t len = payload.size();
    while (off < len) {
      if (!inserted && global == pos) {
        FB_RETURN_NOT_OK(chunker.AppendRaw(insert));
        inserted = true;
      }
      if (global >= pos && del_left > 0) {
        // Skip a run of deleted bytes within this leaf.
        const uint64_t run = std::min<uint64_t>(del_left, len - off);
        del_left -= run;
        off += run;
        global += run;
        continue;
      }
      // Feed a run of kept bytes: up to the insertion point (if still
      // ahead within this leaf) or to the leaf end.
      uint64_t run = len - off;
      if (!inserted && pos > global) {
        run = std::min<uint64_t>(run, pos - global);
      }
      FB_RETURN_NOT_OK(chunker.AppendRaw(payload.subslice(off, run)));
      off += run;
      global += run;
    }
  }

  if (!resynced) {
    if (!inserted) {
      FB_RETURN_NOT_OK(chunker.AppendRaw(insert));
    }
    FB_RETURN_NOT_OK(chunker.Finish());
    out.insert(out.end(), chunker.entries().begin(), chunker.entries().end());
  } else {
    // Drain batched writes produced before the resync point.
    FB_RETURN_NOT_OK(chunker.Finish());
    out.insert(out.begin() + static_cast<long>(start_leaf),
               chunker.entries().begin(), chunker.entries().end());
  }

  return RebuildFromLeaves(std::move(out));
}

Status PosTree::InsertOrAssign(Slice key, Slice value) {
  if (!IsSortedType(leaf_type_)) {
    return Status::InvalidArgument("InsertOrAssign requires a sorted type");
  }
  // Locate the element position of `key` via the leaf entry list.
  std::vector<Entry> leaves;
  FB_RETURN_NOT_OK(LoadLeafEntries(&leaves));
  uint64_t cum = 0;
  size_t li = 0;
  for (; li < leaves.size(); ++li) {
    if (leaves[li].count > 0 && Slice(leaves[li].key) >= key) break;
    cum += leaves[li].count;
  }

  uint64_t pos = cum;
  uint64_t n_delete = 0;
  if (li < leaves.size()) {
    Chunk chunk;
    FB_RETURN_NOT_OK(ReadNode(leaves[li].cid, &chunk));
    std::vector<ElementView> elems;
    FB_RETURN_NOT_OK(
        DecodeLeafElements(chunk.type(), chunk.payload(), &elems));
    const auto it = std::lower_bound(
        elems.begin(), elems.end(), key,
        [](const ElementView& e, const Slice& k) { return e.key < k; });
    pos = cum + static_cast<uint64_t>(it - elems.begin());
    if (it != elems.end() && it->key == key) {
      if (leaf_type_ == ChunkType::kMap && it->value == value) {
        return Status::OK();  // identical: no new version needed
      }
      if (leaf_type_ == ChunkType::kSet) {
        return Status::OK();  // set membership already holds
      }
      n_delete = 1;
    }
  }

  std::vector<Element> ins(1);
  ins[0].key = key.ToBytes();
  ins[0].value = value.ToBytes();
  return SpliceElements(pos, n_delete, ins);
}

Status PosTree::UpsertBatch(std::vector<Element> upserts) {
  if (!IsSortedType(leaf_type_)) {
    return Status::InvalidArgument("UpsertBatch requires a sorted type");
  }
  if (upserts.empty()) return Status::OK();
  // Sort by key; for duplicates the LAST occurrence wins.
  std::stable_sort(upserts.begin(), upserts.end(),
                   [](const Element& a, const Element& b) {
                     return a.key < b.key;
                   });
  {
    std::vector<Element> dedup;
    dedup.reserve(upserts.size());
    for (auto& e : upserts) {
      if (!dedup.empty() && dedup.back().key == e.key) {
        dedup.back() = std::move(e);
      } else {
        dedup.push_back(std::move(e));
      }
    }
    upserts = std::move(dedup);
  }

  std::vector<Entry> leaves;
  FB_RETURN_NOT_OK(LoadLeafEntries(&leaves));

  LeafChunker chunker(store_, leaf_type_, cfg_);
  std::vector<Entry> out;
  Bytes encoded;
  auto feed = [&](Slice key, Slice value) -> Status {
    encoded.clear();
    EncodeElement(leaf_type_, key, value, &encoded);
    return chunker.AppendElement(Slice(encoded), key, 1);
  };
  size_t drained = 0;  // chunker entries already moved to `out`
  auto drain = [&]() {
    auto& es = chunker.entries();
    for (; drained < es.size(); ++drained) out.push_back(es[drained]);
  };

  size_t ui = 0;
  for (size_t li = 0; li < leaves.size(); ++li) {
    const bool is_last = li + 1 == leaves.size();
    const Slice leaf_max(leaves[li].key);
    const bool touched =
        leaves[li].count > 0 && ui < upserts.size() &&
        Slice(upserts[ui].key) <= leaf_max;
    // Trailing upserts (keys beyond every existing key) merge into the
    // last leaf.
    const bool absorbs_tail = is_last && ui < upserts.size();

    if (!touched && !absorbs_tail && chunker.AtBoundary()) {
      drain();
      out.push_back(leaves[li]);
      continue;
    }

    Chunk chunk;
    FB_RETURN_NOT_OK(ReadNode(leaves[li].cid, &chunk));
    std::vector<ElementView> elems;
    FB_RETURN_NOT_OK(
        DecodeLeafElements(chunk.type(), chunk.payload(), &elems));
    // Merge this leaf's elements with the upserts that sort into it.
    size_t ei = 0;
    while (ei < elems.size() || (ui < upserts.size() &&
                                 (is_last ||
                                  Slice(upserts[ui].key) <= leaf_max))) {
      const bool take_upsert =
          ui < upserts.size() &&
          (is_last || Slice(upserts[ui].key) <= leaf_max) &&
          (ei >= elems.size() || Slice(upserts[ui].key) <= elems[ei].key);
      if (take_upsert) {
        if (ei < elems.size() && Slice(upserts[ui].key) == elems[ei].key) {
          ++ei;  // replaced
        }
        FB_RETURN_NOT_OK(
            feed(Slice(upserts[ui].key), Slice(upserts[ui].value)));
        ++ui;
      } else {
        FB_RETURN_NOT_OK(feed(elems[ei].key, elems[ei].value));
        ++ei;
      }
    }
  }
  if (leaves.empty()) {
    for (const Element& e : upserts) {
      FB_RETURN_NOT_OK(feed(Slice(e.key), Slice(e.value)));
    }
  }
  FB_RETURN_NOT_OK(chunker.Finish());
  drain();
  return RebuildFromLeaves(std::move(out));
}

Status PosTree::Erase(Slice key) {
  if (!IsSortedType(leaf_type_)) {
    return Status::InvalidArgument("Erase requires a sorted type");
  }
  std::vector<Entry> leaves;
  FB_RETURN_NOT_OK(LoadLeafEntries(&leaves));
  uint64_t cum = 0;
  size_t li = 0;
  for (; li < leaves.size(); ++li) {
    if (leaves[li].count > 0 && Slice(leaves[li].key) >= key) break;
    cum += leaves[li].count;
  }
  if (li >= leaves.size()) return Status::NotFound("key not in tree");

  Chunk chunk;
  FB_RETURN_NOT_OK(ReadNode(leaves[li].cid, &chunk));
  std::vector<ElementView> elems;
  FB_RETURN_NOT_OK(DecodeLeafElements(chunk.type(), chunk.payload(), &elems));
  const auto it = std::lower_bound(
      elems.begin(), elems.end(), key,
      [](const ElementView& e, const Slice& k) { return e.key < k; });
  if (it == elems.end() || it->key != key) {
    return Status::NotFound("key not in tree");
  }
  const uint64_t pos = cum + static_cast<uint64_t>(it - elems.begin());
  return SpliceElements(pos, 1, {});
}

}  // namespace fb
