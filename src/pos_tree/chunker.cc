#include "pos_tree/chunker.h"

namespace fb {

Status LeafChunker::Commit() {
  FB_ASSIGN_OR_RETURN(Hash cid, writer_.Add(Chunk(leaf_type_, buf_)));
  entries_.push_back(Entry{cid, buf_count_, last_key_});
  buf_.clear();
  buf_count_ = 0;
  last_key_.clear();
  hasher_.Reset();
  return Status::OK();
}

Status LeafChunker::AppendElement(Slice element_bytes, Slice key,
                                  uint64_t count_units) {
  bool hit = false;
  buf_.reserve(buf_.size() + element_bytes.size());
  for (uint8_t b : element_bytes) {
    buf_.push_back(b);
    hasher_.Feed(b);
    // A pattern anywhere inside the element extends the boundary to the
    // element's end.
    hit = hit || hasher_.HitsPattern(cfg_.leaf_pattern_bits);
  }
  buf_count_ += count_units;
  last_key_ = key.ToBytes();
  if (hit || buf_.size() >= cfg_.max_leaf_bytes()) {
    FB_RETURN_NOT_OK(Commit());
  }
  return Status::OK();
}

Status LeafChunker::AppendRaw(Slice bytes) {
  for (uint8_t b : bytes) {
    buf_.push_back(b);
    hasher_.Feed(b);
    ++buf_count_;
    if (hasher_.HitsPattern(cfg_.leaf_pattern_bits) ||
        buf_.size() >= cfg_.max_leaf_bytes()) {
      FB_RETURN_NOT_OK(Commit());
    }
  }
  return Status::OK();
}

Status LeafChunker::Finish() {
  if (!buf_.empty()) FB_RETURN_NOT_OK(Commit());
  return writer_.Flush();
}

Result<Hash> BuildIndexLevels(ChunkStore* store, const TreeConfig& cfg,
                              ChunkType leaf_type, std::vector<Entry> level) {
  if (level.empty()) {
    // Canonical empty tree: a single empty leaf chunk.
    return store->Put(Chunk(leaf_type, {}));
  }

  const ChunkType index_type = IndexTypeFor(leaf_type);
  const uint64_t mask = (uint64_t{1} << cfg.index_pattern_bits) - 1;

  // Index nodes only reference child cids (computed locally), so every
  // node of every level can be buffered and written in batches.
  BatchedChunkWriter writer(store);

  while (level.size() > 1) {
    std::vector<Entry> next;
    Bytes buf;
    uint64_t node_count = 0;
    Bytes node_key;
    size_t node_entries = 0;

    auto commit = [&]() -> Status {
      FB_ASSIGN_OR_RETURN(Hash cid, writer.Add(Chunk(index_type, buf)));
      next.push_back(Entry{cid, node_count, node_key});
      buf.clear();
      node_count = 0;
      node_key.clear();
      node_entries = 0;
      return Status::OK();
    };

    for (const Entry& e : level) {
      EncodeEntry(e, &buf);
      node_count += e.count;
      node_key = e.key;
      ++node_entries;
      // Pattern P': boundary when the child cid's low r bits are zero.
      const bool pattern = (e.cid.Low64() & mask) == 0;
      if (pattern || node_entries >= cfg.max_index_entries()) {
        FB_RETURN_NOT_OK(commit());
      }
    }
    if (node_entries > 0) FB_RETURN_NOT_OK(commit());
    level = std::move(next);
  }
  FB_RETURN_NOT_OK(writer.Flush());
  return level[0].cid;
}

}  // namespace fb
