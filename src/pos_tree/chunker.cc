#include "pos_tree/chunker.h"

namespace fb {

Status LeafChunker::Commit() {
  FB_ASSIGN_OR_RETURN(Hash cid, writer_.Add(Chunk(leaf_type_, buf_)));
  entries_.push_back(Entry{cid, buf_count_, last_key_});
  buf_.clear();
  buf_count_ = 0;
  last_key_.clear();
  hasher_.Reset();
  return Status::OK();
}

Status LeafChunker::AppendElement(Slice element_bytes, Slice key,
                                  uint64_t count_units) {
  // A pattern anywhere inside the element extends the boundary to the
  // element's end, where Commit() resets the hasher — so once the pattern
  // fires the element's remaining bytes can never influence a future
  // state and FeedUntilPattern is free to stop early.
  bool hit = false;
  hasher_.FeedUntilPattern(element_bytes.data(), element_bytes.size(),
                           cfg_.leaf_pattern_bits, &hit);
  buf_.insert(buf_.end(), element_bytes.begin(), element_bytes.end());
  buf_count_ += count_units;
  last_key_.assign(key.begin(), key.end());
  if (hit || buf_.size() >= cfg_.max_leaf_bytes()) {
    FB_RETURN_NOT_OK(Commit());
  }
  return Status::OK();
}

Status LeafChunker::AppendRaw(Slice bytes) {
  const uint8_t* p = bytes.data();
  size_t remaining = bytes.size();
  while (remaining > 0) {
    const size_t room = cfg_.max_leaf_bytes() - buf_.size();
    bool hit = false;
    const size_t took = hasher_.FeedUntilPattern(
        p, remaining < room ? remaining : room, cfg_.leaf_pattern_bits, &hit);
    buf_.insert(buf_.end(), p, p + took);
    buf_count_ += took;
    p += took;
    remaining -= took;
    if (hit || buf_.size() >= cfg_.max_leaf_bytes()) {
      FB_RETURN_NOT_OK(Commit());
    }
  }
  return Status::OK();
}

Status LeafChunker::Finish() {
  if (!buf_.empty()) FB_RETURN_NOT_OK(Commit());
  return writer_.Flush();
}

Result<Hash> BuildIndexLevels(ChunkStore* store, const TreeConfig& cfg,
                              ChunkType leaf_type, std::vector<Entry> level) {
  if (level.empty()) {
    // Canonical empty tree: a single empty leaf chunk.
    return store->Put(Chunk(leaf_type, {}));
  }

  const ChunkType index_type = IndexTypeFor(leaf_type);
  const uint64_t mask = (uint64_t{1} << cfg.index_pattern_bits) - 1;

  // Index nodes only reference child cids (computed locally), so every
  // node of every level can be buffered and written in batches.
  BatchedChunkWriter writer(store);

  while (level.size() > 1) {
    std::vector<Entry> next;
    Bytes buf;
    uint64_t node_count = 0;
    Bytes node_key;
    size_t node_entries = 0;

    auto commit = [&]() -> Status {
      FB_ASSIGN_OR_RETURN(Hash cid, writer.Add(Chunk(index_type, buf)));
      next.push_back(Entry{cid, node_count, node_key});
      buf.clear();
      node_count = 0;
      node_key.clear();
      node_entries = 0;
      return Status::OK();
    };

    for (const Entry& e : level) {
      EncodeEntry(e, &buf);
      node_count += e.count;
      node_key = e.key;
      ++node_entries;
      // Pattern P': boundary when the child cid's low r bits are zero.
      const bool pattern = (e.cid.Low64() & mask) == 0;
      if (pattern || node_entries >= cfg.max_index_entries()) {
        FB_RETURN_NOT_OK(commit());
      }
    }
    if (node_entries > 0) FB_RETURN_NOT_OK(commit());
    level = std::move(next);
  }
  FB_RETURN_NOT_OK(writer.Flush());
  return level[0].cid;
}

}  // namespace fb
