// PosTree: the Pattern-Oriented-Split Tree (Section 4.3).
//
// A POS-Tree is an immutable, content-addressed search tree over a
// sequence of elements. It combines:
//   * a B+-tree     — index nodes with split keys / element counts give
//                     O(log n) point lookups and positional access;
//   * a Merkle tree — child pointers are cids (cryptographic hashes), so
//                     the root hash commits to the entire content and two
//                     trees can be compared by recursive cid comparison;
//   * content-based slicing — node boundaries are derived from content
//                     patterns, so the tree shape is a pure function of
//                     the element sequence (history independence), which
//                     maximizes chunk-level deduplication across versions,
//                     branches and objects.
//
// Mutations are copy-on-write: they write only the new chunks along the
// affected region and return a new root; unchanged chunks are shared.

#ifndef FORKBASE_POS_TREE_TREE_H_
#define FORKBASE_POS_TREE_TREE_H_

#include <optional>
#include <vector>

#include "chunk/chunk_store.h"
#include "pos_tree/chunker.h"
#include "pos_tree/config.h"
#include "pos_tree/node.h"

namespace fb {

class PosTree {
 public:
  // Wraps an existing tree rooted at `root` (leaf or index chunk).
  PosTree(ChunkStore* store, const TreeConfig& cfg, ChunkType leaf_type,
          Hash root)
      : store_(store), cfg_(cfg), leaf_type_(leaf_type), root_(root) {}

  // Builds the canonical tree for an element sequence and stores it.
  static Result<Hash> BuildFromElements(ChunkStore* store,
                                        const TreeConfig& cfg,
                                        ChunkType leaf_type,
                                        const std::vector<Element>& elements);

  // Blob fast path.
  static Result<Hash> BuildFromBytes(ChunkStore* store, const TreeConfig& cfg,
                                     Slice bytes);

  // Stores and returns the canonical empty tree.
  static Result<Hash> EmptyRoot(ChunkStore* store, ChunkType leaf_type);

  Hash root() const { return root_; }
  ChunkType leaf_type() const { return leaf_type_; }
  ChunkStore* store() const { return store_; }
  const TreeConfig& config() const { return cfg_; }

  // Total number of base elements (bytes for Blob). Reads only the root.
  Result<uint64_t> Count() const;

  // Number of levels (1 for a single-leaf tree).
  Result<size_t> Height() const;

  // --- Sorted types (Map / Set) ---------------------------------------

  // Map: value for `key`; Set: empty bytes when present. nullopt if absent.
  Result<std::optional<Bytes>> Find(Slice key) const;

  // Inserts or replaces; updates root(). No-op root change if identical.
  Status InsertOrAssign(Slice key, Slice value);

  // Removes `key`; Status::NotFound if absent.
  Status Erase(Slice key);

  // Applies many upserts in ONE chunking pass (vs one tree rebuild per
  // key with repeated InsertOrAssign). `upserts` need not be sorted;
  // duplicate keys keep the last value. Untouched leaves between edit
  // regions are reused without being read.
  Status UpsertBatch(std::vector<Element> upserts);

  // --- Unsorted types (Blob / List) ------------------------------------

  // Generic splice at element position `pos`: delete `n_delete` elements,
  // then insert `insert` there. Works for List / Set-like bulk loads too.
  Status SpliceElements(uint64_t pos, uint64_t n_delete,
                        const std::vector<Element>& insert);

  // Blob: splice raw bytes.
  Status SpliceBytes(uint64_t pos, uint64_t n_delete, Slice insert);

  // Blob: read `n` bytes from byte offset `pos` (clamped at the end).
  Result<Bytes> ReadBytes(uint64_t pos, uint64_t n) const;

  // List: element at index.
  Result<Bytes> GetElement(uint64_t index) const;

  // --- Introspection ----------------------------------------------------

  // All leaf-level entries in order (reads index nodes only, not leaves).
  Status LoadLeafEntries(std::vector<Entry>* out) const;

  // All cids reachable from the root including the root (index + leaves).
  Status CollectChunkIds(std::vector<Hash>* out) const;

  // Verifies every reachable chunk hashes to its cid (tamper check).
  Status VerifyIntegrity() const;

  // --- Iteration --------------------------------------------------------

  // Forward iterator over elements. For sorted types, key()/value() are
  // the element's key and value; for List, value() is the element.
  //
  // Leaf chunks are fetched lazily: positional queries (Valid, AtLeafStart,
  // leaf_cid) never touch the store, so a diff that skips equal-cid leaves
  // (SkipLeaf) reads neither of them.
  class Iterator {
   public:
    bool Valid() const { return leaf_idx_ < leaves_.size(); }
    Status Next();
    Slice key() const {
      MustLoad();
      return elems_[elem_idx_].key;
    }
    Slice value() const {
      MustLoad();
      return elems_[elem_idx_].value;
    }

    // True when positioned on the first element of the current leaf.
    bool AtLeafStart() const { return elem_idx_ == 0; }
    const Hash& leaf_cid() const { return leaves_[leaf_idx_].cid; }
    uint64_t leaf_count() const { return leaves_[leaf_idx_].count; }

    // Jumps over the current leaf without reading it (diff fast path).
    // Only meaningful when AtLeafStart().
    Status SkipLeaf();

    // Fetches the current leaf if not yet loaded. key()/value() call this
    // implicitly and assert success; call it explicitly to handle store
    // errors gracefully.
    Status EnsureLoaded() const;

   private:
    friend class PosTree;
    void MustLoad() const;

    const PosTree* tree_ = nullptr;
    std::vector<Entry> leaves_;
    size_t leaf_idx_ = 0;
    size_t elem_idx_ = 0;
    mutable bool loaded_ = false;
    mutable Chunk current_;  // keeps elems_ views alive
    mutable std::vector<ElementView> elems_;
  };

  // Iterator at the first element (not supported for Blob).
  Result<Iterator> Begin() const;

 private:
  // Walks down by key; returns leaf chunk containing key range.
  Status FindLeafByKey(Slice key, Chunk* leaf) const;
  Status ReadNode(const Hash& cid, Chunk* chunk) const;
  // Locates the index of the leaf containing element position `pos` given
  // leaf entries; returns leaves.size() when pos == total.
  static size_t LeafIndexForPos(const std::vector<Entry>& leaves,
                                uint64_t pos, uint64_t* leaf_start);

  Status RebuildFromLeaves(std::vector<Entry> leaves);

  ChunkStore* store_;
  TreeConfig cfg_;
  ChunkType leaf_type_;
  Hash root_;
};

}  // namespace fb

#endif  // FORKBASE_POS_TREE_TREE_H_
