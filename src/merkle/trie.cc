#include "merkle/trie.h"

namespace fb {

MerkleTrie::MerkleTrie() : root_(std::make_unique<Node>()) {
  root_hash_.fill(0);
}

MerkleTrie::~MerkleTrie() = default;

namespace {

// Key bytes expand into nibbles, high half first.
inline int NibbleAt(Slice key, size_t i) {
  const uint8_t b = key[i / 2];
  return (i % 2 == 0) ? (b >> 4) : (b & 0xf);
}

}  // namespace

void MerkleTrie::Set(Slice key, Slice value) {
  Node* node = root_.get();
  node->dirty = true;
  const size_t n = key.size() * 2;
  for (size_t i = 0; i < n; ++i) {
    const int nib = NibbleAt(key, i);
    if (!node->children[nib]) node->children[nib] = std::make_unique<Node>();
    node = node->children[nib].get();
    node->dirty = true;
  }
  if (!node->value.has_value()) ++entries_;
  node->value = value.ToString();
}

void MerkleTrie::Remove(Slice key) {
  Node* node = root_.get();
  std::vector<Node*> path{node};
  const size_t n = key.size() * 2;
  for (size_t i = 0; i < n; ++i) {
    const int nib = NibbleAt(key, i);
    if (!node->children[nib]) return;  // absent
    node = node->children[nib].get();
    path.push_back(node);
  }
  if (node->value.has_value()) {
    node->value.reset();
    --entries_;
    for (Node* p : path) p->dirty = true;
  }
}

bool MerkleTrie::Get(Slice key, std::string* value) const {
  const Node* node = root_.get();
  const size_t n = key.size() * 2;
  for (size_t i = 0; i < n; ++i) {
    const int nib = NibbleAt(key, i);
    if (!node->children[nib]) return false;
    node = node->children[nib].get();
  }
  if (!node->value.has_value()) return false;
  *value = *node->value;
  return true;
}

Sha256::Digest MerkleTrie::HashNode(Node* node, MerkleCommitStats* stats) {
  if (!node->dirty) return node->hash;
  Sha256 h;
  uint64_t fed = 0;
  for (int i = 0; i < 16; ++i) {
    if (node->children[i]) {
      const Sha256::Digest child = HashNode(node->children[i].get(), stats);
      h.Update(Slice(child.data(), child.size()));
      fed += Sha256::kDigestSize;
    } else {
      const uint8_t none = 0;
      h.Update(Slice(&none, 1));
      fed += 1;
    }
  }
  if (node->value.has_value()) {
    h.Update(Slice(*node->value));
    fed += node->value->size();
  }
  node->hash = h.Finalize();
  node->dirty = false;
  stats->bytes_hashed += fed;
  ++stats->nodes_rehashed;
  return node->hash;
}

Sha256::Digest MerkleTrie::Commit(MerkleCommitStats* stats) {
  MerkleCommitStats local;
  MerkleCommitStats* st = stats != nullptr ? stats : &local;
  root_hash_ = HashNode(root_.get(), st);
  return root_hash_;
}

}  // namespace fb
