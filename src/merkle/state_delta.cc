#include "merkle/state_delta.h"

namespace fb {

namespace {

void PutOptional(Bytes* out, const std::optional<std::string>& v) {
  out->push_back(v.has_value() ? 1 : 0);
  if (v.has_value()) PutLengthPrefixed(out, Slice(*v));
}

Status ReadOptional(ByteReader* r, std::optional<std::string>* v) {
  Slice flag;
  FB_RETURN_NOT_OK(r->ReadRaw(1, &flag));
  if (flag[0] == 0) {
    v->reset();
    return Status::OK();
  }
  Slice s;
  FB_RETURN_NOT_OK(r->ReadLengthPrefixed(&s));
  *v = s.ToString();
  return Status::OK();
}

}  // namespace

Bytes StateDelta::Serialize() const {
  Bytes out;
  PutVarint64(&out, changes_.size());
  for (const auto& [k, c] : changes_) {
    PutLengthPrefixed(&out, Slice(k));
    PutOptional(&out, c.old_value);
    PutOptional(&out, c.new_value);
  }
  return out;
}

Result<StateDelta> StateDelta::Deserialize(Slice data) {
  StateDelta delta;
  ByteReader r(data);
  uint64_t n = 0;
  FB_RETURN_NOT_OK(r.ReadVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    Slice key;
    FB_RETURN_NOT_OK(r.ReadLengthPrefixed(&key));
    Change c;
    FB_RETURN_NOT_OK(ReadOptional(&r, &c.old_value));
    FB_RETURN_NOT_OK(ReadOptional(&r, &c.new_value));
    delta.changes_[key.ToString()] = std::move(c);
  }
  return delta;
}

}  // namespace fb
