#include "merkle/bucket_tree.h"

#include "util/codec.h"

namespace fb {

BucketTree::BucketTree(size_t num_buckets)
    : buckets_(num_buckets), bucket_hashes_(num_buckets) {
  for (auto& h : bucket_hashes_) h.fill(0);
  // Pre-size internal levels for a binary tree.
  size_t width = num_buckets;
  while (width > 1) {
    width = (width + 1) / 2;
    levels_.emplace_back(width);
    for (auto& h : levels_.back()) h.fill(0);
  }
  root_.fill(0);
}

size_t BucketTree::BucketOf(Slice key) const {
  // FNV-1a keeps bucket routing cheap; Hyperledger uses a similar
  // non-cryptographic placement hash.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : key) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return static_cast<size_t>(h % buckets_.size());
}

void BucketTree::Set(Slice key, Slice value) {
  const size_t idx = BucketOf(key);
  buckets_[idx][key.ToString()] = value.ToString();
  dirty_.insert(idx);
}

void BucketTree::Remove(Slice key) {
  const size_t idx = BucketOf(key);
  if (buckets_[idx].erase(key.ToString()) > 0) dirty_.insert(idx);
}

bool BucketTree::Get(Slice key, std::string* value) const {
  const auto& bucket = buckets_[BucketOf(key)];
  auto it = bucket.find(key.ToString());
  if (it == bucket.end()) return false;
  *value = it->second;
  return true;
}

Sha256::Digest BucketTree::HashBucket(size_t idx,
                                      MerkleCommitStats* stats) const {
  // The entire bucket is re-serialized and re-hashed: this is the write
  // amplification knob that the bucket count controls.
  Bytes buf;
  for (const auto& [k, v] : buckets_[idx]) {
    PutLengthPrefixed(&buf, Slice(k));
    PutLengthPrefixed(&buf, Slice(v));
  }
  stats->bytes_hashed += buf.size();
  ++stats->nodes_rehashed;
  return Sha256::Hash(Slice(buf));
}

Sha256::Digest BucketTree::Commit(MerkleCommitStats* stats) {
  MerkleCommitStats local;
  MerkleCommitStats* st = stats != nullptr ? stats : &local;

  // Recompute dirty buckets, then propagate dirtiness up the binary tree.
  std::set<size_t> dirty_positions;
  for (size_t idx : dirty_) {
    bucket_hashes_[idx] = HashBucket(idx, st);
    dirty_positions.insert(idx / 2);
  }
  dirty_.clear();

  const std::vector<Sha256::Digest>* below = &bucket_hashes_;
  for (auto& level : levels_) {
    std::set<size_t> next_dirty;
    for (size_t pos : dirty_positions) {
      if (pos >= level.size()) continue;
      Sha256 h;
      const size_t li = pos * 2;
      const size_t ri = li + 1;
      h.Update(Slice((*below)[li].data(), (*below)[li].size()));
      if (ri < below->size()) {
        h.Update(Slice((*below)[ri].data(), (*below)[ri].size()));
      }
      st->bytes_hashed += Sha256::kDigestSize * 2;
      ++st->nodes_rehashed;
      level[pos] = h.Finalize();
      next_dirty.insert(pos / 2);
    }
    dirty_positions = std::move(next_dirty);
    below = &level;
  }
  root_ = levels_.empty() ? bucket_hashes_[0] : levels_.back()[0];
  return root_;
}

uint64_t BucketTree::total_entries() const {
  uint64_t n = 0;
  for (const auto& b : buckets_) n += b.size();
  return n;
}

}  // namespace fb
