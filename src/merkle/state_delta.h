// StateDelta: Hyperledger v0.6 keeps old values and old Merkle roots in a
// per-block "state delta" so historical state can be reconstructed by
// replaying deltas — exactly the structure whose absence of indexing makes
// the Figure 12 scan queries slow on the KV baselines.

#ifndef FORKBASE_MERKLE_STATE_DELTA_H_
#define FORKBASE_MERKLE_STATE_DELTA_H_

#include <map>
#include <optional>
#include <string>

#include "util/codec.h"
#include "util/slice.h"
#include "util/status.h"

namespace fb {

class StateDelta {
 public:
  struct Change {
    std::optional<std::string> old_value;  // nullopt: key was absent
    std::optional<std::string> new_value;  // nullopt: key deleted
  };

  void Record(Slice key, std::optional<std::string> old_value,
              std::optional<std::string> new_value) {
    auto it = changes_.find(key.ToString());
    if (it == changes_.end()) {
      changes_[key.ToString()] = Change{std::move(old_value),
                                        std::move(new_value)};
    } else {
      // Batched updates to one key: keep the first old value, last new.
      it->second.new_value = std::move(new_value);
    }
  }

  const std::map<std::string, Change>& changes() const { return changes_; }
  bool empty() const { return changes_.empty(); }
  void clear() { changes_.clear(); }

  Bytes Serialize() const;
  static Result<StateDelta> Deserialize(Slice data);

 private:
  std::map<std::string, Change> changes_;
};

}  // namespace fb

#endif  // FORKBASE_MERKLE_STATE_DELTA_H_
