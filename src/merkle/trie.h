// MerkleTrie: the alternative Hyperledger v0.6 world-state structure — a
// hex (nibble-wise) Merkle Patricia-style trie. Updates rehash only the
// root-to-leaf path (low write amplification), but the structure is not
// balanced: depth follows key distribution, so commits traverse longer
// paths than a balanced tree (the Figure 11 "trie" series).

#ifndef FORKBASE_MERKLE_TRIE_H_
#define FORKBASE_MERKLE_TRIE_H_

#include <array>
#include <memory>
#include <optional>
#include <string>

#include "merkle/bucket_tree.h"  // MerkleCommitStats
#include "util/sha256.h"
#include "util/slice.h"

namespace fb {

class MerkleTrie {
 public:
  MerkleTrie();
  ~MerkleTrie();

  void Set(Slice key, Slice value);
  void Remove(Slice key);
  bool Get(Slice key, std::string* value) const;

  // Rehashes all paths dirtied since the previous commit.
  Sha256::Digest Commit(MerkleCommitStats* stats);

  const Sha256::Digest& root() const { return root_hash_; }
  uint64_t total_entries() const { return entries_; }

 private:
  struct Node {
    std::array<std::unique_ptr<Node>, 16> children;
    std::optional<std::string> value;
    Sha256::Digest hash{};
    bool dirty = true;
  };

  static Sha256::Digest HashNode(Node* node, MerkleCommitStats* stats);

  std::unique_ptr<Node> root_;
  Sha256::Digest root_hash_{};
  uint64_t entries_ = 0;
};

}  // namespace fb

#endif  // FORKBASE_MERKLE_TRIE_H_
