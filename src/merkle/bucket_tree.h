// BucketTree: Hyperledger v0.6's default Merkle structure over the world
// state (Section 6.2.2 / Figure 11 of the paper).
//
// The number of leaf buckets is fixed at start-up; a data key's bucket is
// determined by hashing the key. A binary Merkle tree is maintained above
// the buckets. Updating one key dirties its whole bucket, so the commit
// cost includes re-serializing and re-hashing every entry in each dirty
// bucket — the write amplification that makes small bucket counts "fail
// to scale beyond workloads of a certain size".

#ifndef FORKBASE_MERKLE_BUCKET_TREE_H_
#define FORKBASE_MERKLE_BUCKET_TREE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/sha256.h"
#include "util/slice.h"

namespace fb {

struct MerkleCommitStats {
  uint64_t bytes_hashed = 0;   // bytes fed to the hash during this commit
  uint64_t nodes_rehashed = 0; // buckets/nodes recomputed
};

class BucketTree {
 public:
  explicit BucketTree(size_t num_buckets);

  void Set(Slice key, Slice value);
  void Remove(Slice key);
  // NotFound semantics via bool; values are small states.
  bool Get(Slice key, std::string* value) const;

  // Recomputes hashes of dirty buckets and the internal path to the root.
  // Returns the new root hash; per-commit costs in `stats`.
  Sha256::Digest Commit(MerkleCommitStats* stats);

  const Sha256::Digest& root() const { return root_; }
  size_t num_buckets() const { return buckets_.size(); }
  uint64_t total_entries() const;

 private:
  size_t BucketOf(Slice key) const;
  Sha256::Digest HashBucket(size_t idx, MerkleCommitStats* stats) const;

  std::vector<std::map<std::string, std::string>> buckets_;
  std::vector<Sha256::Digest> bucket_hashes_;
  // levels_[0] = hashes over bucket pairs, ... up to the root.
  std::vector<std::vector<Sha256::Digest>> levels_;
  std::set<size_t> dirty_;
  Sha256::Digest root_{};
};

}  // namespace fb

#endif  // FORKBASE_MERKLE_BUCKET_TREE_H_
