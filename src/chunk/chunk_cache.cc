#include "chunk/chunk_cache.h"

namespace fb {

bool LruChunkCache::Get(const Hash& cid, Chunk* chunk) {
  MutexLock lock(mu_);
  auto it = index_.find(cid);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *chunk = it->second->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  hit_bytes_.fetch_add(it->second->second.serialized_size(),
                       std::memory_order_relaxed);
  return true;
}

void LruChunkCache::Put(const Hash& cid, const Chunk& chunk) {
  const size_t charge = chunk.serialized_size();
  // Every insert is the tail end of a miss that went to the slow path —
  // count its bytes whether or not the chunk ends up cached.
  miss_bytes_.fetch_add(charge, std::memory_order_relaxed);
  if (charge > capacity_) return;
  MutexLock lock(mu_);
  auto it = index_.find(cid);
  if (it != index_.end()) {
    // Re-insert replaces the old entry wholesale — charge included. An
    // honest caller's bytes are identical (content addressing), but the
    // accounting must follow the stored chunk either way: refreshing
    // recency while stacking a second charge would let bytes_ drift past
    // capacity_ without any entry to evict for it.
    bytes_ -= it->second->second.serialized_size();
    lru_.erase(it->second);
    index_.erase(it);
  }
  EvictUntilFits(charge);
  lru_.emplace_front(cid, chunk);
  index_.emplace(cid, lru_.begin());
  bytes_ += charge;
}

void LruChunkCache::EvictUntilFits(size_t incoming) {
  while (!lru_.empty() && bytes_ + incoming > capacity_) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.second.serialized_size();
    index_.erase(victim.first);
    lru_.pop_back();
  }
}

}  // namespace fb
