#include "chunk/block_cache.h"

#include <algorithm>

namespace fb {

namespace {

// The protected segment holds at most this fraction of a shard budget;
// the remainder is probation, where admission duels happen.
constexpr size_t kProtectedNum = 4;  // 4/5 = 80%
constexpr size_t kProtectedDen = 5;

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Four independent 64->64 mixes of the cid hash, one per sketch row.
uint64_t MixRow(uint64_t h, int row) {
  h += 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(row + 1);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

}  // namespace

void AdmissionChunkCache::FrequencySketch::Reset(size_t counters) {
  const size_t n = RoundUpPow2(std::max<size_t>(counters, 64));
  for (auto& row : rows_) row.assign(n, 0);
  mask_ = n - 1;
  touches_ = 0;
  // Halve once we have seen ~10 touches per counter — the classic
  // TinyLFU sample size, small enough that a shifted workload
  // re-ranks within one aging period.
  sample_size_ = 10 * n;
}

void AdmissionChunkCache::FrequencySketch::Touch(uint64_t cid_hash) {
  for (int r = 0; r < 4; ++r) {
    uint8_t& c = rows_[r][MixRow(cid_hash, r) & mask_];
    if (c < 255) ++c;
  }
  if (++touches_ >= sample_size_) Age();
}

uint32_t AdmissionChunkCache::FrequencySketch::Estimate(
    uint64_t cid_hash) const {
  uint32_t est = 255;
  for (int r = 0; r < 4; ++r) {
    est = std::min<uint32_t>(est, rows_[r][MixRow(cid_hash, r) & mask_]);
  }
  return est;
}

void AdmissionChunkCache::FrequencySketch::Age() {
  for (auto& row : rows_) {
    for (uint8_t& c : row) c >>= 1;
  }
  touches_ /= 2;
}

AdmissionChunkCache::AdmissionChunkCache(size_t capacity_bytes,
                                         size_t n_shards)
    : capacity_(capacity_bytes),
      shard_capacity_(capacity_bytes / std::max<size_t>(n_shards, 1)) {
  const size_t n = std::max<size_t>(n_shards, 1);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    // Size the sketch for roughly the number of 4KB-ish chunks the
    // shard can hold, with headroom for the non-resident cids whose
    // frequency we must remember to admit them later.
    shard->sketch.Reset((shard_capacity_ / 1024) + 256);
    shards_.push_back(std::move(shard));
  }
}

bool AdmissionChunkCache::Get(const Hash& cid, Chunk* chunk) {
  Shard& s = ShardFor(cid);
  MutexLock lock(s.mu);
  s.sketch.Touch(cid.Mid64());
  auto it = s.index.find(cid);
  if (it == s.index.end()) {
    ++s.stats.misses;
    return false;
  }
  EntryList::iterator eit = it->second;
  if (eit->is_protected) {
    s.protected_seg.splice(s.protected_seg.begin(), s.protected_seg, eit);
  } else {
    // Second touch: promote out of probation. The entry survives
    // future admission duels entirely until demoted.
    eit->is_protected = true;
    s.protected_bytes += eit->charge;
    s.protected_seg.splice(s.protected_seg.begin(), s.probation, eit);
    BalanceProtected(s);
  }
  ++s.stats.hits;
  s.stats.hit_bytes += eit->charge;
  *chunk = eit->chunk;
  return true;
}

bool AdmissionChunkCache::Contains(const Hash& cid) const {
  Shard& s = ShardFor(cid);
  MutexLock lock(s.mu);
  return s.index.count(cid) > 0;
}

void AdmissionChunkCache::Put(const Hash& cid, const Chunk& chunk) {
  const size_t charge = chunk.serialized_size();
  Shard& s = ShardFor(cid);
  MutexLock lock(s.mu);
  s.stats.miss_bytes += charge;
  if (charge > shard_capacity_ || shard_capacity_ == 0) {
    ++s.stats.rejections;
    return;
  }
  auto it = s.index.find(cid);
  if (it != s.index.end()) {
    // Already resident (a racing filler beat us). Chunks are immutable,
    // so the bytes are identical; just refresh recency.
    EntryList& seg = it->second->is_protected ? s.protected_seg : s.probation;
    seg.splice(seg.begin(), seg, it->second);
    return;
  }
  if (!MakeRoom(s, cid.Mid64(), charge)) {
    ++s.stats.rejections;
    return;
  }
  s.probation.push_front(Entry{cid, chunk, charge, false});
  s.index[cid] = s.probation.begin();
  s.bytes += charge;
  ++s.stats.admissions;
}

bool AdmissionChunkCache::MakeRoom(Shard& s, uint64_t incoming_hash,
                                   size_t incoming_charge) {
  while (s.bytes + incoming_charge > shard_capacity_) {
    if (s.probation.empty()) {
      // Only protected residents remain. Demote the protected tail to
      // keep a duel candidate available rather than evicting the hot
      // set blindly.
      if (s.protected_seg.empty()) return false;
      EntryList::iterator tail = std::prev(s.protected_seg.end());
      tail->is_protected = false;
      s.protected_bytes -= tail->charge;
      s.probation.splice(s.probation.begin(), s.protected_seg, tail);
    }
    EntryList::iterator victim = std::prev(s.probation.end());
    // The admission duel: a newcomer must be at least as hot as the
    // coldest resident it would displace. One-touch scan chunks
    // (estimate 1) cannot displace anything touched twice.
    if (s.sketch.Estimate(incoming_hash) <
        s.sketch.Estimate(victim->cid.Mid64())) {
      return false;
    }
    s.bytes -= victim->charge;
    s.index.erase(victim->cid);
    s.probation.erase(victim);
    ++s.stats.evictions;
  }
  return true;
}

void AdmissionChunkCache::BalanceProtected(Shard& s) {
  const size_t cap = shard_capacity_ * kProtectedNum / kProtectedDen;
  while (s.protected_bytes > cap && !s.protected_seg.empty()) {
    EntryList::iterator tail = std::prev(s.protected_seg.end());
    tail->is_protected = false;
    s.protected_bytes -= tail->charge;
    s.probation.splice(s.probation.begin(), s.protected_seg, tail);
  }
}

size_t AdmissionChunkCache::size_bytes() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    MutexLock lock(s->mu);
    total += s->bytes;
  }
  return total;
}

size_t AdmissionChunkCache::entries() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    MutexLock lock(s->mu);
    total += s->index.size();
  }
  return total;
}

BlockCacheStats AdmissionChunkCache::stats() const {
  BlockCacheStats total;
  for (const auto& s : shards_) {
    MutexLock lock(s->mu);
    total.hits += s->stats.hits;
    total.misses += s->stats.misses;
    total.hit_bytes += s->stats.hit_bytes;
    total.miss_bytes += s->stats.miss_bytes;
    total.admissions += s->stats.admissions;
    total.rejections += s->stats.rejections;
    total.evictions += s->stats.evictions;
  }
  return total;
}

}  // namespace fb
