#include "chunk/chunk_store.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace fb {

// ---------------------------------------------------------------------------
// MemChunkStore
// ---------------------------------------------------------------------------

Status MemChunkStore::Put(const Hash& cid, const Chunk& chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.puts;
  stats_.logical_bytes += chunk.serialized_size();
  auto it = chunks_.find(cid);
  if (it != chunks_.end()) {
    ++stats_.dedup_hits;
    return Status::OK();
  }
  stats_.stored_bytes += chunk.serialized_size();
  ++stats_.chunks;
  chunks_.emplace(cid, chunk);
  return Status::OK();
}

Status MemChunkStore::Get(const Hash& cid, Chunk* chunk) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++const_cast<ChunkStoreStats&>(stats_).gets;
  auto it = chunks_.find(cid);
  if (it == chunks_.end()) {
    return Status::NotFound("chunk " + cid.ToShortHex());
  }
  *chunk = it->second;
  return Status::OK();
}

bool MemChunkStore::Contains(const Hash& cid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return chunks_.count(cid) > 0;
}

ChunkStoreStats MemChunkStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MemChunkStore::ForEach(
    const std::function<void(const Hash&, const Chunk&)>& fn) const {
  // Snapshot under the lock, invoke outside it so `fn` may call back
  // into stores.
  std::vector<std::pair<Hash, Chunk>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.assign(chunks_.begin(), chunks_.end());
  }
  for (const auto& [cid, chunk] : snapshot) fn(cid, chunk);
}

// ---------------------------------------------------------------------------
// LogChunkStore
// ---------------------------------------------------------------------------

Result<std::unique_ptr<LogChunkStore>> LogChunkStore::Open(
    const std::string& dir, uint64_t segment_size) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("create_directories: " + ec.message());
  auto store = std::unique_ptr<LogChunkStore>(
      new LogChunkStore(dir, segment_size));
  Status s = store->Recover();
  if (!s.ok()) return s;
  return store;
}

LogChunkStore::~LogChunkStore() {
  if (active_ != nullptr) std::fclose(active_);
}

std::string LogChunkStore::SegmentPath(uint32_t n) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/seg-%06u.fbl", n);
  return dir_ + buf;
}

Status LogChunkStore::Recover() {
  // Scan segments in order; verify each record's cid while indexing.
  uint32_t seg = 0;
  for (;; ++seg) {
    const std::string path = SegmentPath(seg);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) break;
    uint64_t off = 0;
    for (;;) {
      uint8_t header[4 + Hash::kSize];
      const size_t got = std::fread(header, 1, sizeof(header), f);
      if (got == 0) break;  // clean end of segment
      if (got != sizeof(header)) {
        std::fclose(f);
        return Status::Corruption("truncated record header in " + path);
      }
      uint32_t len = 0;
      for (int i = 0; i < 4; ++i) len |= uint32_t{header[i]} << (8 * i);
      Sha256::Digest d;
      std::memcpy(d.data(), header + 4, Hash::kSize);
      const Hash cid{d};

      Bytes body(len);
      if (len > 0 && std::fread(body.data(), 1, len, f) != len) {
        std::fclose(f);
        return Status::Corruption("truncated record body in " + path);
      }
      Chunk chunk;
      if (!Chunk::Deserialize(Slice(body), &chunk)) {
        std::fclose(f);
        return Status::Corruption("bad chunk encoding in " + path);
      }
      if (chunk.ComputeCid() != cid) {
        std::fclose(f);
        return Status::Corruption("cid mismatch (tampered chunk) in " + path);
      }
      index_[cid] = Location{seg, off, len};
      ++stats_.chunks;
      stats_.stored_bytes += chunk.serialized_size();
      off += sizeof(header) + len;
    }
    std::fclose(f);
    active_id_ = seg;
    active_off_ = off;
  }

  // Open (or create) the active segment for appending.
  if (seg == 0) {
    active_id_ = 0;
    active_off_ = 0;
  }
  active_ = std::fopen(SegmentPath(active_id_).c_str(), "ab");
  if (active_ == nullptr) {
    return Status::IOError(std::string("open active segment: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status LogChunkStore::RollSegment() {
  std::fclose(active_);
  ++active_id_;
  active_off_ = 0;
  active_ = std::fopen(SegmentPath(active_id_).c_str(), "ab");
  if (active_ == nullptr) {
    return Status::IOError(std::string("roll segment: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status LogChunkStore::Put(const Hash& cid, const Chunk& chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.puts;
  stats_.logical_bytes += chunk.serialized_size();
  if (index_.count(cid) > 0) {
    ++stats_.dedup_hits;
    return Status::OK();
  }

  if (active_off_ >= segment_size_) FB_RETURN_NOT_OK(RollSegment());

  const Bytes body = chunk.Serialize();
  const uint32_t len = static_cast<uint32_t>(body.size());
  uint8_t header[4 + Hash::kSize];
  for (int i = 0; i < 4; ++i) header[i] = static_cast<uint8_t>(len >> (8 * i));
  std::memcpy(header + 4, cid.data(), Hash::kSize);

  if (std::fwrite(header, 1, sizeof(header), active_) != sizeof(header) ||
      (len > 0 && std::fwrite(body.data(), 1, len, active_) != len)) {
    return Status::IOError("short write to segment");
  }

  index_[cid] = Location{active_id_, active_off_, len};
  active_off_ += sizeof(header) + len;
  ++stats_.chunks;
  stats_.stored_bytes += chunk.serialized_size();
  return Status::OK();
}

Status LogChunkStore::ReadRecord(const Location& loc, Chunk* chunk) const {
  std::FILE* f = nullptr;
  if (loc.segment == active_id_) {
    // Reads from the active segment must see buffered appends.
    std::fflush(active_);
  }
  f = std::fopen(SegmentPath(loc.segment).c_str(), "rb");
  if (f == nullptr) return Status::IOError("open segment for read");
  if (std::fseek(f, static_cast<long>(loc.offset + 4 + Hash::kSize),
                 SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IOError("seek");
  }
  Bytes body(loc.length);
  if (loc.length > 0 &&
      std::fread(body.data(), 1, loc.length, f) != loc.length) {
    std::fclose(f);
    return Status::Corruption("short record read");
  }
  std::fclose(f);
  if (!Chunk::Deserialize(Slice(body), chunk)) {
    return Status::Corruption("bad chunk encoding");
  }
  return Status::OK();
}

Status LogChunkStore::Get(const Hash& cid, Chunk* chunk) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++const_cast<ChunkStoreStats&>(stats_).gets;
  auto it = index_.find(cid);
  if (it == index_.end()) return Status::NotFound("chunk " + cid.ToShortHex());
  return ReadRecord(it->second, chunk);
}

bool LogChunkStore::Contains(const Hash& cid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(cid) > 0;
}

ChunkStoreStats LogChunkStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status LogChunkStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ != nullptr && std::fflush(active_) != 0) {
    return Status::IOError("fflush");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ChunkStorePool
// ---------------------------------------------------------------------------

ChunkStorePool::ChunkStorePool(size_t n_instances) {
  stores_.reserve(n_instances);
  for (size_t i = 0; i < n_instances; ++i) {
    stores_.push_back(std::make_unique<MemChunkStore>());
  }
}

ChunkStoreStats ChunkStorePool::TotalStats() const {
  ChunkStoreStats total;
  for (const auto& s : stores_) {
    const ChunkStoreStats st = s->stats();
    total.puts += st.puts;
    total.dedup_hits += st.dedup_hits;
    total.gets += st.gets;
    total.chunks += st.chunks;
    total.stored_bytes += st.stored_bytes;
    total.logical_bytes += st.logical_bytes;
  }
  return total;
}

std::vector<ChunkStoreStats> ChunkStorePool::PerInstanceStats() const {
  std::vector<ChunkStoreStats> out;
  out.reserve(stores_.size());
  for (const auto& s : stores_) out.push_back(s->stats());
  return out;
}

}  // namespace fb
