#include "chunk/chunk_store.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "chunk/block_cache.h"

namespace fb {

// ---------------------------------------------------------------------------
// BatchedChunkWriter
// ---------------------------------------------------------------------------

Result<Hash> BatchedChunkWriter::Add(Chunk chunk) {
  const Hash cid = chunk.ComputeCid();
  pending_.emplace_back(cid, std::move(chunk));
  if (pending_.size() >= batch_size_) {
    FB_RETURN_NOT_OK(Flush());
  }
  return cid;
}

Status BatchedChunkWriter::Flush() {
  if (pending_.empty()) return Status::OK();
  FB_RETURN_NOT_OK(store_->PutBatch(pending_));
  pending_.clear();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ChunkStore default batch paths
// ---------------------------------------------------------------------------

Status ChunkStore::PutBatch(const ChunkBatch& batch) {
  for (const auto& [cid, chunk] : batch) {
    FB_RETURN_NOT_OK(Put(cid, chunk));
  }
  return Status::OK();
}

Status ChunkStore::GetBatch(const std::vector<Hash>& cids,
                            std::vector<Chunk>* chunks) const {
  chunks->resize(cids.size());
  for (size_t i = 0; i < cids.size(); ++i) {
    FB_RETURN_NOT_OK(Get(cids[i], &(*chunks)[i]));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MemChunkStore
// ---------------------------------------------------------------------------

MemChunkStore::MemChunkStore(size_t n_shards) {
  if (n_shards == 0) n_shards = 1;
  shards_.reserve(n_shards);
  for (size_t i = 0; i < n_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Status MemChunkStore::Put(const Hash& cid, const Chunk& chunk) {
  Shard& shard = *shards_[ShardIndex(cid)];
  bool dedup_hit;
  {
    MutexLock lock(shard.mu);
    // find-first: a dedup hit must not pay the chunk copy.
    dedup_hit = shard.chunks.count(cid) > 0;
    if (!dedup_hit) shard.chunks.emplace(cid, chunk);
  }
  stats_.RecordPut(chunk.serialized_size(), dedup_hit);
  return Status::OK();
}

Status MemChunkStore::Get(const Hash& cid, Chunk* chunk) const {
  stats_.RecordGet();
  const Shard& shard = *shards_[ShardIndex(cid)];
  MutexLock lock(shard.mu);
  auto it = shard.chunks.find(cid);
  if (it == shard.chunks.end()) {
    return Status::NotFound("chunk " + cid.ToShortHex());
  }
  *chunk = it->second;
  return Status::OK();
}

bool MemChunkStore::Contains(const Hash& cid) const {
  const Shard& shard = *shards_[ShardIndex(cid)];
  MutexLock lock(shard.mu);
  return shard.chunks.count(cid) > 0;
}

Status MemChunkStore::PutBatch(const ChunkBatch& batch) {
  std::vector<PendingInsert> entries;
  entries.reserve(batch.size());
  for (const auto& [cid, chunk] : batch) {
    entries.push_back(PendingInsert{&cid, &chunk});
  }
  return EnqueueAndWait(entries.data(), entries.size());
}

Status MemChunkStore::EnqueueAndWait(const PendingInsert* entries, size_t n) {
  if (n == 0) return Status::OK();
  MutexLock ql(gc_mu_);
  gc_queue_.insert(gc_queue_.end(), entries, entries + n);
  gc_enqueued_ += n;
  const uint64_t target = gc_enqueued_;

  while (gc_done_ < target) {
    if (gc_combiner_active_) {
      gc_cv_.Wait(gc_mu_);
      continue;
    }
    gc_combiner_active_ = true;
    while (!gc_queue_.empty()) {
      std::vector<PendingInsert> group = std::move(gc_queue_);
      gc_queue_.clear();
      ql.Unlock();
      CommitGroup(group);
      ql.Lock();
      gc_done_ += group.size();
      gc_cv_.SignalAll();
    }
    gc_combiner_active_ = false;
    gc_cv_.SignalAll();
  }
  return Status::OK();
}

void MemChunkStore::CommitGroup(const std::vector<PendingInsert>& group) {
  // Group positions by shard, then take each shard's lock exactly once
  // for the whole drained group — across every caller that enqueued
  // into it. Within a shard records land in enqueue order, so duplicate
  // cids dedup exactly like the equivalent sequence of Puts.
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < group.size(); ++i) {
    by_shard[ShardIndex(*group[i].cid)].push_back(i);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    MutexLock lock(shard.mu);
    for (size_t i : by_shard[s]) {
      const Hash& cid = *group[i].cid;
      const Chunk& chunk = *group[i].chunk;
      const bool dedup_hit = shard.chunks.count(cid) > 0;
      if (!dedup_hit) shard.chunks.emplace(cid, chunk);
      stats_.RecordPut(chunk.serialized_size(), dedup_hit);
    }
  }
}

Status MemChunkStore::GetBatch(const std::vector<Hash>& cids,
                               std::vector<Chunk>* chunks) const {
  chunks->resize(cids.size());
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < cids.size(); ++i) {
    by_shard[ShardIndex(cids[i])].push_back(i);
    stats_.RecordGet();
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    const Shard& shard = *shards_[s];
    MutexLock lock(shard.mu);
    for (size_t i : by_shard[s]) {
      auto it = shard.chunks.find(cids[i]);
      if (it == shard.chunks.end()) {
        return Status::NotFound("chunk " + cids[i].ToShortHex());
      }
      (*chunks)[i] = it->second;
    }
  }
  return Status::OK();
}

ChunkStoreStats MemChunkStore::stats() const { return stats_.Snapshot(); }

void MemChunkStore::ForEach(
    const std::function<void(const Hash&, const Chunk&)>& fn) const {
  // Snapshot shard by shard under its lock, invoke outside all locks so
  // `fn` may call back into stores.
  std::vector<std::pair<Hash, Chunk>> snapshot;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    snapshot.insert(snapshot.end(), shard->chunks.begin(),
                    shard->chunks.end());
  }
  for (const auto& [cid, chunk] : snapshot) fn(cid, chunk);
}

// ---------------------------------------------------------------------------
// LogChunkStore
// ---------------------------------------------------------------------------

Result<std::unique_ptr<LogChunkStore>> LogChunkStore::Open(
    const std::string& dir, LogStoreOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("create_directories: " + ec.message());
  auto store =
      std::unique_ptr<LogChunkStore>(new LogChunkStore(dir, options));
  if (options.block_cache_bytes > 0) {
    store->block_cache_ =
        std::make_unique<AdmissionChunkCache>(options.block_cache_bytes);
  }
  Status s = store->Recover();
  if (!s.ok()) return s;
  return store;
}

Result<std::unique_ptr<LogChunkStore>> LogChunkStore::Open(
    const std::string& dir, uint64_t segment_size) {
  LogStoreOptions options;
  options.segment_size = segment_size;
  return Open(dir, options);
}

LogChunkStore::LogChunkStore(std::string dir, LogStoreOptions options)
    : dir_(std::move(dir)), options_(options) {}

LogChunkStore::~LogChunkStore() {
  if (active_ != nullptr) std::fclose(active_);
}

std::string LogChunkStore::SegmentPath(uint32_t n) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/seg-%06u.fbl", n);
  return dir_ + buf;
}

Status LogChunkStore::Recover() {
  // Runs once from Open() before the store is published, but takes mu_
  // anyway: the guarded fields it populates stay provably consistent and
  // the lock is uncontended by construction.
  MutexLock lock(mu_);
  // Scan segments in order; verify each record's cid while indexing. A
  // truncated record is forgiven only at the tail of the LAST segment —
  // that is exactly what a process crash between group-commit fwrites
  // leaves behind (stdio appends are prefix writes) — and is cut off so
  // appends resume at the last good record. Tampering (cid mismatch, bad
  // encoding) and short records in earlier segments are corruption
  // wherever they appear. Deliberately NOT forgiven: a full-length tail
  // record whose cid does not verify. Power loss with out-of-order page
  // writeback can produce one, but so can an attacker rewriting the last
  // record — and silently truncating it would erase the evidence. A
  // tamper-evident store fails loud on that ambiguity and leaves the
  // call to the operator.
  uint32_t seg = 0;
  bool torn_tail = false;
  for (; !torn_tail; ++seg) {
    const std::string path = SegmentPath(seg);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) break;
    const bool is_last = !std::filesystem::exists(SegmentPath(seg + 1));
    uint64_t off = 0;
    for (;;) {
      uint8_t header[4 + Hash::kSize];
      const size_t got = std::fread(header, 1, sizeof(header), f);
      if (got == 0) break;  // clean end of segment
      if (got != sizeof(header)) {
        std::fclose(f);
        f = nullptr;
        if (!is_last) {
          return Status::Corruption("truncated record header in " + path);
        }
        torn_tail = true;
        break;
      }
      uint32_t len = 0;
      for (int i = 0; i < 4; ++i) len |= uint32_t{header[i]} << (8 * i);
      Sha256::Digest d;
      std::memcpy(d.data(), header + 4, Hash::kSize);
      const Hash cid{d};

      Bytes body(len);
      const size_t body_got =
          len > 0 ? std::fread(body.data(), 1, len, f) : 0;
      if (len > 0 && body_got != len) {
        std::fclose(f);
        f = nullptr;
        if (!is_last) {
          return Status::Corruption("truncated record body in " + path);
        }
        torn_tail = true;
        break;
      }
      Chunk chunk;
      if (!Chunk::Deserialize(Slice(body), &chunk)) {
        std::fclose(f);
        return Status::Corruption("bad chunk encoding in " + path);
      }
      if (chunk.ComputeCid() != cid) {
        std::fclose(f);
        return Status::Corruption("cid mismatch (tampered chunk) in " + path);
      }
      index_[cid] = Location{seg, off, len};
      stats_.RecordRecoveredChunk(chunk.serialized_size());
      off += sizeof(header) + len;
    }
    if (f != nullptr) std::fclose(f);
    active_id_ = seg;
    active_off_ = off;
    if (torn_tail) {
      std::error_code ec;
      std::filesystem::resize_file(path, off, ec);
      if (ec) {
        return Status::IOError("truncate torn tail: " + ec.message());
      }
    }
  }

  // Open (or create) the active segment for appending.
  if (seg == 0) {
    active_id_ = 0;
    active_off_ = 0;
  }
  active_ = std::fopen(SegmentPath(active_id_).c_str(), "ab");
  if (active_ == nullptr) {
    return Status::IOError(std::string("open active segment: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status LogChunkStore::RollSegment() {
  std::fclose(active_);
  ++active_id_;
  active_off_ = 0;
  active_ = std::fopen(SegmentPath(active_id_).c_str(), "ab");
  if (active_ == nullptr) {
    return Status::IOError(std::string("roll segment: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status LogChunkStore::SyncActive() {
  if (std::fflush(active_) != 0) return Status::IOError("fflush");
  if (::fsync(::fileno(active_)) != 0) {
    return Status::IOError(std::string("fsync: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status LogChunkStore::CommitGroup(const std::vector<PendingAppend>& group) {
  MutexLock lock(mu_);

  // Records are packed into `buf` and written with one fwrite per
  // segment-span; their index entries are published only after the bytes
  // (and, per policy, the fsync) land, so readers never see a record the
  // log does not hold.
  Bytes buf;
  std::vector<std::pair<Hash, Location>> staged;
  std::vector<uint64_t> staged_sizes;
  std::unordered_set<Hash, HashHasher> staged_cids;

  for (const PendingAppend& p : group) {
    const Hash& cid = *p.cid;
    const Chunk& chunk = *p.chunk;
    if (index_.count(cid) > 0 || staged_cids.count(cid) > 0) {
      stats_.RecordPut(chunk.serialized_size(), /*dedup_hit=*/true);
      continue;
    }
    if (active_off_ + buf.size() >= options_.segment_size) {
      FB_RETURN_NOT_OK(
          FlushStaged(&buf, &staged, &staged_sizes, &staged_cids));
      if (active_off_ >= options_.segment_size) {
        FB_RETURN_NOT_OK(RollSegment());
      }
    }

    const Bytes body = chunk.Serialize();
    const uint32_t len = static_cast<uint32_t>(body.size());
    staged.emplace_back(cid,
                        Location{active_id_, active_off_ + buf.size(), len});
    staged_sizes.push_back(chunk.serialized_size());
    staged_cids.insert(cid);
    uint8_t header[4 + Hash::kSize];
    for (int i = 0; i < 4; ++i) {
      header[i] = static_cast<uint8_t>(len >> (8 * i));
    }
    std::memcpy(header + 4, cid.data(), Hash::kSize);
    buf.insert(buf.end(), header, header + sizeof(header));
    buf.insert(buf.end(), body.begin(), body.end());

    if (options_.durability == DurabilityPolicy::kAlways) {
      FB_RETURN_NOT_OK(
          FlushStaged(&buf, &staged, &staged_sizes, &staged_cids));
    }
  }
  return FlushStaged(&buf, &staged, &staged_sizes, &staged_cids);
}

Status LogChunkStore::FlushStaged(
    Bytes* buf, std::vector<std::pair<Hash, Location>>* staged,
    std::vector<uint64_t>* staged_sizes,
    std::unordered_set<Hash, HashHasher>* staged_cids) {
  if (buf->empty()) return Status::OK();
  if (std::fwrite(buf->data(), 1, buf->size(), active_) != buf->size()) {
    return Status::IOError("short write to segment");
  }
  if (options_.durability != DurabilityPolicy::kNone) {
    FB_RETURN_NOT_OK(SyncActive());
  }
  for (size_t j = 0; j < staged->size(); ++j) {
    index_[(*staged)[j].first] = (*staged)[j].second;
    stats_.RecordPut((*staged_sizes)[j], /*dedup_hit=*/false);
  }
  active_off_ += buf->size();
  buf->clear();
  staged->clear();
  staged_sizes->clear();
  staged_cids->clear();
  return Status::OK();
}

Status LogChunkStore::EnqueueAndWait(const PendingAppend* entries, size_t n) {
  if (n == 0) return Status::OK();
  MutexLock ql(gc_mu_);
  if (!gc_error_.ok()) return gc_error_;
  gc_queue_.insert(gc_queue_.end(), entries, entries + n);
  gc_enqueued_ += n;
  const uint64_t target = gc_enqueued_;

  while (gc_durable_ < target) {
    if (gc_combiner_active_) {
      // Another writer is combining; it will cover our records or hand
      // the combiner role back before they are reached.
      gc_cv_.Wait(gc_mu_);
      continue;
    }
    gc_combiner_active_ = true;
    while (!gc_queue_.empty()) {
      std::vector<PendingAppend> group = std::move(gc_queue_);
      gc_queue_.clear();
      ql.Unlock();
      Status s = CommitGroup(group);
      ql.Lock();
      gc_durable_ += group.size();
      if (!s.ok() && gc_error_.ok()) gc_error_ = s;
      gc_cv_.SignalAll();
    }
    gc_combiner_active_ = false;
    gc_cv_.SignalAll();
  }
  return gc_error_;
}

Status LogChunkStore::Put(const Hash& cid, const Chunk& chunk) {
  const PendingAppend one{&cid, &chunk};
  return EnqueueAndWait(&one, 1);
}

Status LogChunkStore::PutBatch(const ChunkBatch& batch) {
  std::vector<PendingAppend> entries;
  entries.reserve(batch.size());
  for (const auto& [cid, chunk] : batch) {
    entries.push_back(PendingAppend{&cid, &chunk});
  }
  return EnqueueAndWait(entries.data(), entries.size());
}

namespace {

// Reads one record body from an already-open segment file.
Status ReadRecordFrom(std::FILE* f, uint64_t offset, uint32_t length,
                      Chunk* chunk) {
  if (std::fseek(f, static_cast<long>(offset + 4 + Hash::kSize), SEEK_SET) !=
      0) {
    return Status::IOError("seek");
  }
  Bytes body(length);
  if (length > 0 && std::fread(body.data(), 1, length, f) != length) {
    return Status::Corruption("short record read");
  }
  if (!Chunk::Deserialize(Slice(body), chunk)) {
    return Status::Corruption("bad chunk encoding");
  }
  return Status::OK();
}

}  // namespace

Status LogChunkStore::ReadRecord(const Location& loc, Chunk* chunk) const {
  std::FILE* f = std::fopen(SegmentPath(loc.segment).c_str(), "rb");
  if (f == nullptr) return Status::IOError("open segment for read");
  Status s = ReadRecordFrom(f, loc.offset, loc.length, chunk);
  std::fclose(f);
  return s;
}

Status LogChunkStore::Get(const Hash& cid, Chunk* chunk) const {
  stats_.RecordGet();
  // Block cache first: a hit skips the index lock and the disk entirely.
  // Chunks are immutable, so a cached copy is always current — the cache
  // can answer before the index is even consulted.
  if (block_cache_ != nullptr && block_cache_->Get(cid, chunk)) {
    return Status::OK();
  }
  Location loc;
  {
    MutexLock lock(mu_);
    auto it = index_.find(cid);
    if (it == index_.end()) {
      return Status::NotFound("chunk " + cid.ToShortHex());
    }
    loc = it->second;
    // Reads of the active segment must see buffered appends; flush while
    // still holding the lock so `active_` cannot roll concurrently.
    if (loc.segment == active_id_ && std::fflush(active_) != 0) {
      return Status::IOError("fflush before read");
    }
  }
  // The record is immutable and its segment file is never deleted, so the
  // actual file I/O can proceed without serializing against appends.
  Status s = ReadRecord(loc, chunk);
  if (s.ok() && block_cache_ != nullptr) block_cache_->Put(cid, *chunk);
  return s;
}

Status LogChunkStore::GetBatch(const std::vector<Hash>& cids,
                               std::vector<Chunk>* chunks) const {
  chunks->resize(cids.size());
  // Serve cache hits up front; only misses pay for index lookups and
  // segment I/O below.
  std::vector<size_t> missing;
  missing.reserve(cids.size());
  for (size_t i = 0; i < cids.size(); ++i) {
    stats_.RecordGet();
    if (block_cache_ != nullptr && block_cache_->Get(cids[i], &(*chunks)[i])) {
      continue;
    }
    missing.push_back(i);
  }
  if (missing.empty()) return Status::OK();

  std::vector<Location> locs(cids.size());
  {
    MutexLock lock(mu_);
    bool flushed = false;
    for (size_t i : missing) {
      auto it = index_.find(cids[i]);
      if (it == index_.end()) {
        return Status::NotFound("chunk " + cids[i].ToShortHex());
      }
      locs[i] = it->second;
      if (!flushed && locs[i].segment == active_id_) {
        if (std::fflush(active_) != 0) {
          return Status::IOError("fflush before read");
        }
        flushed = true;
      }
    }
  }
  // Group the reads by segment and serve each segment through one file
  // handle in offset order, instead of an open/seek/close per record.
  std::vector<size_t> order = missing;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (locs[a].segment != locs[b].segment) {
      return locs[a].segment < locs[b].segment;
    }
    return locs[a].offset < locs[b].offset;
  });
  std::FILE* f = nullptr;
  uint32_t open_segment = 0;
  Status s;
  for (size_t i : order) {
    if (f == nullptr || locs[i].segment != open_segment) {
      if (f != nullptr) std::fclose(f);
      open_segment = locs[i].segment;
      f = std::fopen(SegmentPath(open_segment).c_str(), "rb");
      if (f == nullptr) return Status::IOError("open segment for read");
    }
    s = ReadRecordFrom(f, locs[i].offset, locs[i].length, &(*chunks)[i]);
    if (!s.ok()) break;
    if (block_cache_ != nullptr) block_cache_->Put(cids[i], (*chunks)[i]);
  }
  if (f != nullptr) std::fclose(f);
  return s;
}

bool LogChunkStore::Contains(const Hash& cid) const {
  MutexLock lock(mu_);
  return index_.count(cid) > 0;
}

ChunkStoreStats LogChunkStore::stats() const {
  ChunkStoreStats s = stats_.Snapshot();
  if (block_cache_ != nullptr) {
    const BlockCacheStats bc = block_cache_->stats();
    s.cache_hits += bc.hits;
    s.cache_misses += bc.misses;
    s.cache_hit_bytes += bc.hit_bytes;
    s.cache_miss_bytes += bc.miss_bytes;
    s.cache_admissions += bc.admissions;
    s.cache_rejections += bc.rejections;
  }
  return s;
}

Status LogChunkStore::Flush() {
  MutexLock lock(mu_);
  if (active_ != nullptr && std::fflush(active_) != 0) {
    return Status::IOError("fflush");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ChunkStorePool
// ---------------------------------------------------------------------------

ChunkStorePool::ChunkStorePool(size_t n_instances) {
  stores_.reserve(n_instances);
  for (size_t i = 0; i < n_instances; ++i) {
    stores_.push_back(std::make_unique<MemChunkStore>());
  }
}

Status ChunkStorePool::PutBatch(const ChunkBatch& batch) {
  std::vector<ChunkBatch> by_instance(stores_.size());
  for (const auto& pair : batch) {
    by_instance[PartitionOf(pair.first)].push_back(pair);
  }
  for (size_t i = 0; i < stores_.size(); ++i) {
    if (by_instance[i].empty()) continue;
    FB_RETURN_NOT_OK(stores_[i]->PutBatch(by_instance[i]));
  }
  return Status::OK();
}

Status ChunkStorePool::GetBatch(const std::vector<Hash>& cids,
                                std::vector<Chunk>* chunks) const {
  chunks->resize(cids.size());
  std::vector<std::vector<size_t>> by_instance(stores_.size());
  for (size_t i = 0; i < cids.size(); ++i) {
    by_instance[PartitionOf(cids[i])].push_back(i);
  }
  std::vector<Hash> sub_cids;
  std::vector<Chunk> sub_chunks;
  for (size_t p = 0; p < stores_.size(); ++p) {
    if (by_instance[p].empty()) continue;
    sub_cids.clear();
    sub_cids.reserve(by_instance[p].size());
    for (size_t i : by_instance[p]) sub_cids.push_back(cids[i]);
    FB_RETURN_NOT_OK(stores_[p]->GetBatch(sub_cids, &sub_chunks));
    for (size_t j = 0; j < by_instance[p].size(); ++j) {
      (*chunks)[by_instance[p][j]] = std::move(sub_chunks[j]);
    }
  }
  return Status::OK();
}

ChunkStoreStats ChunkStorePool::TotalStats() const {
  ChunkStoreStats total;
  for (const auto& s : stores_) total.Accumulate(s->stats());
  return total;
}

std::vector<ChunkStoreStats> ChunkStorePool::PerInstanceStats() const {
  std::vector<ChunkStoreStats> out;
  out.reserve(stores_.size());
  for (const auto& s : stores_) out.push_back(s->stats());
  return out;
}

}  // namespace fb
