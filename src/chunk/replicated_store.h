// Chunk replication (Section 4.4): "To improve data durability and fault
// tolerance, chunks can be replicated over multiple nodes ... there are
// only k copies of any chunk in the storage. Furthermore, replicas help
// reduce the latency of data access, e.g., by placing a replica on the
// servlet that frequently accesses its data."
//
// ReplicatedChunkStore spreads each chunk to k consecutive pool
// instances (by cid hash). Reads try the replicas in placement order and
// transparently survive up to k-1 unavailable instances.

#ifndef FORKBASE_CHUNK_REPLICATED_STORE_H_
#define FORKBASE_CHUNK_REPLICATED_STORE_H_

#include <memory>
#include <vector>

#include "chunk/chunk_store.h"

namespace fb {

class ReplicatedChunkStore : public ChunkStore {
 public:
  // `replication` is clamped to [1, n_instances].
  ReplicatedChunkStore(size_t n_instances, size_t replication);

  using ChunkStore::Put;
  Status Put(const Hash& cid, const Chunk& chunk) override;
  Status Get(const Hash& cid, Chunk* chunk) const override;
  bool Contains(const Hash& cid) const override;
  ChunkStoreStats stats() const override;

  size_t replication() const { return replication_; }
  size_t num_instances() const { return stores_.size(); }

  // Simulates an instance failure/recovery: while down, the instance
  // rejects reads (writes still target it and are lost, as a crashed
  // node's would be until re-replication).
  void SetInstanceDown(size_t i, bool down);

  // Replicas responsible for `cid`, in placement order.
  std::vector<size_t> ReplicasOf(const Hash& cid) const;

  // Re-replicates every chunk whose copies dropped below k because of
  // down instances (anti-entropy pass run by the cluster master).
  Status Repair();

  const MemChunkStore* instance(size_t i) const { return stores_[i].get(); }

 private:
  size_t replication_;
  std::vector<std::unique_ptr<MemChunkStore>> stores_;
  std::vector<bool> down_;
};

}  // namespace fb

#endif  // FORKBASE_CHUNK_REPLICATED_STORE_H_
