// LruChunkCache: a byte-capped, thread-safe LRU cache of chunks.
//
// The first slice of the ROADMAP read-path item: it sits in front of
// slow read fallbacks (the ServletChunkStore pool scan today; a
// LogChunkStore disk read tomorrow). Chunks are immutable and
// content-addressed, so the cache never invalidates — entries only
// leave by LRU eviction when the byte budget is exceeded.

#ifndef FORKBASE_CHUNK_CHUNK_CACHE_H_
#define FORKBASE_CHUNK_CHUNK_CACHE_H_

#include <atomic>
#include <list>
#include <unordered_map>
#include <utility>

#include "chunk/chunk.h"
#include "util/mutex.h"

namespace fb {

class LruChunkCache {
 public:
  static constexpr size_t kDefaultCapacityBytes = 8u << 20;

  explicit LruChunkCache(size_t capacity_bytes = kDefaultCapacityBytes)
      : capacity_(capacity_bytes) {}

  // Copies the cached chunk into *chunk and refreshes its recency.
  // Counts a hit or a miss either way.
  bool Get(const Hash& cid, Chunk* chunk);

  // Inserts (or refreshes) a chunk, evicting least-recently-used
  // entries until the byte budget holds. A chunk larger than the whole
  // budget is not cached.
  void Put(const Hash& cid, const Chunk& chunk);

  size_t size_bytes() const {
    MutexLock lock(mu_);
    return bytes_;
  }
  size_t entries() const {
    MutexLock lock(mu_);
    return index_.size();
  }
  size_t capacity_bytes() const { return capacity_; }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  // Byte twins of the counters above: hit_bytes are serialized bytes
  // served from the cache; miss_bytes are serialized bytes offered back
  // by the slow path after a miss (counted at Put, capacity or not).
  uint64_t hit_bytes() const {
    return hit_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t miss_bytes() const {
    return miss_bytes_.load(std::memory_order_relaxed);
  }

 private:
  using Entry = std::pair<Hash, Chunk>;

  // Charges serialized_size (the bytes a fetch saves).
  void EvictUntilFits(size_t incoming) REQUIRES(mu_);

  const size_t capacity_;
  mutable Mutex mu_{kRankCache, "chunk-cache"};
  std::list<Entry> lru_ GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<Hash, std::list<Entry>::iterator, HashHasher> index_
      GUARDED_BY(mu_);
  size_t bytes_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> hit_bytes_{0};
  std::atomic<uint64_t> miss_bytes_{0};
};

}  // namespace fb

#endif  // FORKBASE_CHUNK_CHUNK_CACHE_H_
