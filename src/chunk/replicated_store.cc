#include "chunk/replicated_store.h"

#include <algorithm>

namespace fb {

ReplicatedChunkStore::ReplicatedChunkStore(size_t n_instances,
                                           size_t replication)
    : replication_(std::clamp<size_t>(replication, 1, n_instances)),
      down_(n_instances, false) {
  stores_.reserve(n_instances);
  for (size_t i = 0; i < n_instances; ++i) {
    stores_.push_back(std::make_unique<MemChunkStore>());
  }
}

std::vector<size_t> ReplicatedChunkStore::ReplicasOf(const Hash& cid) const {
  std::vector<size_t> out;
  const size_t primary = static_cast<size_t>(cid.Low64() % stores_.size());
  for (size_t r = 0; r < replication_; ++r) {
    out.push_back((primary + r) % stores_.size());
  }
  return out;
}

Status ReplicatedChunkStore::Put(const Hash& cid, const Chunk& chunk) {
  Status first_error;
  size_t ok_count = 0;
  for (size_t i : ReplicasOf(cid)) {
    if (down_[i]) continue;  // crashed replica misses the write
    const Status s = stores_[i]->Put(cid, chunk);
    if (s.ok()) {
      ++ok_count;
    } else if (first_error.ok()) {
      first_error = s;
    }
  }
  if (ok_count == 0) {
    return first_error.ok() ? Status::IOError("all replicas down")
                            : first_error;
  }
  return Status::OK();
}

Status ReplicatedChunkStore::Get(const Hash& cid, Chunk* chunk) const {
  bool any_up = false;
  for (size_t i : ReplicasOf(cid)) {
    if (down_[i]) continue;
    any_up = true;
    const Status s = stores_[i]->Get(cid, chunk);
    if (s.ok()) return s;
    if (!s.IsNotFound()) return s;
  }
  if (!any_up) return Status::IOError("all replicas down");
  return Status::NotFound("chunk " + cid.ToShortHex());
}

bool ReplicatedChunkStore::Contains(const Hash& cid) const {
  for (size_t i : ReplicasOf(cid)) {
    if (!down_[i] && stores_[i]->Contains(cid)) return true;
  }
  return false;
}

ChunkStoreStats ReplicatedChunkStore::stats() const {
  ChunkStoreStats total;
  for (const auto& s : stores_) total.Accumulate(s->stats());
  return total;
}

void ReplicatedChunkStore::SetInstanceDown(size_t i, bool down) {
  if (i < down_.size()) down_[i] = down;
}

Status ReplicatedChunkStore::Repair() {
  // Anti-entropy: every live instance streams its chunks, and each chunk
  // is re-put to any live replica of its placement set that misses it.
  Status result;
  for (size_t src = 0; src < stores_.size(); ++src) {
    if (down_[src]) continue;
    stores_[src]->ForEach([&](const Hash& cid, const Chunk& chunk) {
      for (size_t i : ReplicasOf(cid)) {
        if (down_[i] || stores_[i]->Contains(cid)) continue;
        const Status s = stores_[i]->Put(cid, chunk);
        if (!s.ok() && result.ok()) result = s;
      }
    });
  }
  return result;
}

}  // namespace fb
