#include "chunk/chunk.h"

namespace fb {

const char* ChunkTypeToString(ChunkType type) {
  switch (type) {
    case ChunkType::kMeta:
      return "Meta";
    case ChunkType::kUIndex:
      return "UIndex";
    case ChunkType::kSIndex:
      return "SIndex";
    case ChunkType::kBlob:
      return "Blob";
    case ChunkType::kList:
      return "List";
    case ChunkType::kSet:
      return "Set";
    case ChunkType::kMap:
      return "Map";
  }
  return "Unknown";
}

Hash Hash::FromHex(std::string_view hex) {
  const Bytes raw = HexDecode(hex);
  if (raw.size() != kSize) return Hash();
  Sha256::Digest d;
  std::copy(raw.begin(), raw.end(), d.begin());
  return Hash(d);
}

const Hash& Hash::Null() {
  static const Hash kNull;
  return kNull;
}

Bytes Chunk::Serialize() const {
  Bytes out;
  out.reserve(serialized_size());
  out.push_back(static_cast<uint8_t>(type_));
  AppendSlice(&out, Slice(payload_));
  return out;
}

bool Chunk::Deserialize(Slice data, Chunk* out) {
  if (data.empty()) return false;
  const uint8_t type = data[0];
  if (type > static_cast<uint8_t>(ChunkType::kMap)) return false;
  *out = Chunk(static_cast<ChunkType>(type),
               data.subslice(1, data.size() - 1).ToBytes());
  return true;
}

Hash Chunk::ComputeCid() const {
  Sha256 h;
  const uint8_t type_byte = static_cast<uint8_t>(type_);
  h.Update(Slice(&type_byte, 1));
  h.Update(Slice(payload_));
  return Hash(h.Finalize());
}

}  // namespace fb
