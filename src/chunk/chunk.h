// Chunk: the basic unit of storage in ForkBase (Section 4.2).
//
// A chunk is a typed, immutable block of bytes, uniquely identified by its
// cid = H(type byte || payload). Chunk types correspond to the chunkable
// data types plus Meta (FObject) and the two index-node kinds.

#ifndef FORKBASE_CHUNK_CHUNK_H_
#define FORKBASE_CHUNK_CHUNK_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "util/sha256.h"
#include "util/slice.h"

namespace fb {

// Chunk types (Table 2 of the paper).
enum class ChunkType : uint8_t {
  kMeta = 0,    // metadata for an FObject
  kUIndex = 1,  // index entries for unsorted types (Blob, List)
  kSIndex = 2,  // index entries for sorted types (Set, Map)
  kBlob = 3,    // a sequence of raw bytes
  kList = 4,    // a sequence of elements
  kSet = 5,     // a sequence of sorted elements
  kMap = 6,     // a sequence of sorted key-value pairs
};

const char* ChunkTypeToString(ChunkType type);

// 32-byte content id. A cid commits to a chunk's exact bytes; a Meta
// chunk's cid doubles as the FObject's uid.
class Hash {
 public:
  static constexpr size_t kSize = Sha256::kDigestSize;

  Hash() { bytes_.fill(0); }
  explicit Hash(const Sha256::Digest& d) : bytes_(d) {}

  // Computes H(data) — the canonical chunk-id function.
  static Hash Of(Slice data) { return Hash(Sha256::Hash(data)); }

  // Parses a 64-char hex string; returns the null hash on malformed input.
  static Hash FromHex(std::string_view hex);

  // The all-zero hash, used as "no parent" / "empty" sentinel.
  static const Hash& Null();

  bool IsNull() const { return *this == Null(); }

  const uint8_t* data() const { return bytes_.data(); }
  size_t size() const { return bytes_.size(); }
  Slice slice() const { return Slice(bytes_.data(), bytes_.size()); }

  std::string ToHex() const { return HexEncode(slice()); }
  // Short prefix for logs.
  std::string ToShortHex() const { return ToHex().substr(0, 8); }

  // Low 64 bits as an integer; used by the index-node pattern P' and by
  // the cid-based chunk partitioner.
  uint64_t Low64() const {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(bytes_[i]) << (8 * i);
    return v;
  }

  // Bytes 8..15 as an integer. MemChunkStore stripes on this slice so
  // shard choice stays independent of the Low64-based pool partition.
  uint64_t Mid64() const {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(bytes_[8 + i]) << (8 * i);
    }
    return v;
  }

  bool operator==(const Hash& o) const { return bytes_ == o.bytes_; }
  bool operator!=(const Hash& o) const { return bytes_ != o.bytes_; }
  bool operator<(const Hash& o) const { return bytes_ < o.bytes_; }

 private:
  std::array<uint8_t, kSize> bytes_;
};

struct HashHasher {
  size_t operator()(const Hash& h) const {
    return static_cast<size_t>(h.Low64());
  }
};

// An immutable typed byte block. The serialized form is
//   [1-byte type][payload...]
// and cid = SHA-256 over exactly those bytes.
class Chunk {
 public:
  Chunk() : type_(ChunkType::kBlob) {}
  Chunk(ChunkType type, Bytes payload)
      : type_(type), payload_(std::move(payload)) {}

  ChunkType type() const { return type_; }
  Slice payload() const { return Slice(payload_); }
  size_t payload_size() const { return payload_.size(); }
  // Total serialized size including the type byte.
  size_t serialized_size() const { return payload_.size() + 1; }

  // Serializes to [type][payload].
  Bytes Serialize() const;

  // Parses a serialized chunk. Returns false on empty input.
  static bool Deserialize(Slice data, Chunk* out);

  // cid over the serialized bytes.
  Hash ComputeCid() const;

 private:
  ChunkType type_;
  Bytes payload_;
};

}  // namespace fb

namespace std {
template <>
struct hash<fb::Hash> {
  size_t operator()(const fb::Hash& h) const {
    return static_cast<size_t>(h.Low64());
  }
};
}  // namespace std

#endif  // FORKBASE_CHUNK_CHUNK_H_
