#include "chunk/peer_resolver.h"

#include <utility>

#include "rpc/remote_service.h"

namespace fb {

// One peer servlet: the endpoint plus a lazily-opened RemoteService.
// shared_ptr so a SetPeers that swaps the set cannot pull a Peer out
// from under a fetch that already snapshotted it.
struct PeerChunkResolver::Peer {
  explicit Peer(std::string ep) : endpoint(std::move(ep)) {}
  const std::string endpoint;
  std::mutex mu;  // guards conn open/replace
  std::unique_ptr<rpc::RemoteService> conn;
};

// Single-flight rendezvous: the leader fills status/chunk and flips
// done; followers wait on cv and copy the result.
struct PeerChunkResolver::Inflight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
  Chunk chunk;
};

PeerChunkResolver::PeerChunkResolver(std::vector<std::string> peers,
                                     PeerResolverOptions options)
    : options_(options) {
  SetPeers(std::move(peers));
}

PeerChunkResolver::~PeerChunkResolver() = default;

void PeerChunkResolver::SetPeers(std::vector<std::string> peers) {
  std::vector<std::shared_ptr<Peer>> fresh;
  fresh.reserve(peers.size());
  for (auto& ep : peers) {
    if (!ep.empty()) fresh.push_back(std::make_shared<Peer>(std::move(ep)));
  }
  std::lock_guard<std::mutex> lock(peers_mu_);
  peers_.swap(fresh);
}

size_t PeerChunkResolver::num_peers() const {
  std::lock_guard<std::mutex> lock(peers_mu_);
  return peers_.size();
}

Status PeerChunkResolver::Fetch(const Hash& cid, Chunk* chunk) {
  std::shared_ptr<Inflight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(cid);
    if (it == inflight_.end()) {
      flight = std::make_shared<Inflight>();
      inflight_.emplace(cid, flight);
      leader = true;
    } else {
      flight = it->second;
    }
  }

  if (!leader) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    if (flight->status.ok()) *chunk = flight->chunk;
    return flight->status;
  }

  const Status s = FetchFromPeers(cid, chunk);
  {
    // Deregister before publishing: a fetch arriving after the result is
    // posted starts fresh (the chunk may have appeared on a peer since).
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(cid);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->status = s;
    if (s.ok()) flight->chunk = *chunk;
    flight->done = true;
  }
  flight->cv.notify_all();
  return s;
}

Status PeerChunkResolver::FetchFromPeers(const Hash& cid, Chunk* chunk) {
  std::vector<std::shared_ptr<Peer>> peers;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    peers = peers_;
  }
  if (peers.empty()) return Status::NotFound(cid.ToShortHex());

  bool some_peer_down = false;
  Status down_why;
  // Start at a cid-derived offset so concurrent misses spread their
  // first ask across the peer set instead of hammering peer 0.
  const size_t start = static_cast<size_t>(cid.Mid64() % peers.size());
  for (size_t i = 0; i < peers.size(); ++i) {
    Peer* peer = peers[(start + i) % peers.size()].get();
    Status asked;
    {
      std::lock_guard<std::mutex> lock(peer->mu);
      if (peer->conn == nullptr) {
        rpc::RemoteServiceOptions ro;
        ro.pool_size = options_.pool_size;
        auto connected = rpc::RemoteService::Connect(peer->endpoint, ro);
        if (!connected.ok()) {
          some_peer_down = true;
          down_why = connected.status();
          continue;
        }
        peer->conn = std::move(*connected);
      }
    }
    // Outside peer->mu: RemoteService is thread-safe, and a slow peer
    // must not serialize fetches that could try the next peer.
    asked = peer->conn->GetChunkLocal(cid, chunk);
    if (asked.ok()) {
      fetches_.fetch_add(1, std::memory_order_relaxed);
      return asked;
    }
    if (asked.IsNotFound()) continue;  // authoritative "not here"
    // Transport trouble: the connection self-heals on the next call;
    // this fetch just cannot prove absence anymore.
    some_peer_down = true;
    down_why = asked;
  }

  failures_.fetch_add(1, std::memory_order_relaxed);
  if (some_peer_down) {
    return Status::Unavailable("peer unreachable while resolving " +
                               cid.ToShortHex() + ": " + down_why.ToString());
  }
  return Status::NotFound(cid.ToShortHex());
}

}  // namespace fb
