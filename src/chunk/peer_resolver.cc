#include "chunk/peer_resolver.h"

#include <chrono>
#include <utility>

#include "rpc/remote_service.h"

namespace fb {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

// One peer servlet: the endpoint, a lazily-opened RemoteService, and
// the failure-backoff health state. shared_ptr so a SetPeers that swaps
// the set cannot pull a Peer out from under a fetch that already
// snapshotted it.
struct PeerChunkResolver::Peer {
  explicit Peer(std::string ep) : endpoint(std::move(ep)) {}

  const std::string endpoint;
  // Guards conn open/replace and the health fields. Same rank as
  // peers_mu_ (never held together: AskOrder snapshots the set first,
  // releases, then reads each peer's health); held across a connect,
  // which takes the RemoteService locks — they rank deeper.
  Mutex mu{kRankPeerResolver, "peer"};
  std::unique_ptr<rpc::RemoteService> conn GUARDED_BY(mu);
  // Health: consecutive failures drive an exponential cooldown during
  // which the peer is skipped instead of re-attempted.
  uint64_t consecutive_failures GUARDED_BY(mu) = 0;
  Clock::time_point next_attempt GUARDED_BY(mu){};  // epoch = no cooldown

  void RecordSuccess() EXCLUDES(mu) {
    MutexLock lock(mu);
    consecutive_failures = 0;
    next_attempt = Clock::time_point{};
  }
  void RecordFailure(const PeerResolverOptions& options) EXCLUDES(mu) {
    MutexLock lock(mu);
    ++consecutive_failures;
    const unsigned shift =
        consecutive_failures > 16 ? 16
                                  : static_cast<unsigned>(consecutive_failures - 1);
    uint64_t cooldown_ms = options.backoff_initial_ms << shift;
    if (cooldown_ms > options.backoff_max_ms ||
        cooldown_ms < options.backoff_initial_ms) {
      cooldown_ms = options.backoff_max_ms;
    }
    next_attempt = Clock::now() + std::chrono::milliseconds(cooldown_ms);
  }
};

// Single-flight rendezvous: the leader fills status/chunk and flips
// done; followers wait on cv and copy the result.
struct PeerChunkResolver::Inflight {
  // Same rank as inflight_mu_: the registry lock is always released
  // before a flight's own lock is taken.
  Mutex mu{kRankPeerFlight, "peer-flight"};
  CondVar cv;
  bool done GUARDED_BY(mu) = false;
  Status status GUARDED_BY(mu);
  Chunk chunk GUARDED_BY(mu);
};

PeerChunkResolver::PeerChunkResolver(std::vector<std::string> peers,
                                     PeerResolverOptions options)
    : options_(options) {
  SetPeers(std::move(peers));
}

PeerChunkResolver::~PeerChunkResolver() = default;

void PeerChunkResolver::SetPeers(std::vector<std::string> peers) {
  MutexLock lock(peers_mu_);
  std::vector<std::shared_ptr<Peer>> fresh;
  fresh.reserve(peers.size());
  for (auto& ep : peers) {
    if (ep.empty()) continue;
    // Incremental: an endpoint already in the set keeps its Peer object
    // — pooled connections and backoff health included — so growing the
    // set by one does not reconnect the world. Only genuinely new
    // endpoints start cold, and endpoints absent from the new list are
    // dropped (in-flight fetches holding their shared_ptr finish
    // unharmed).
    std::shared_ptr<Peer> carried;
    for (const auto& existing : peers_) {
      if (existing->endpoint == ep) {
        carried = existing;
        break;
      }
    }
    fresh.push_back(carried != nullptr
                        ? std::move(carried)
                        : std::make_shared<Peer>(std::move(ep)));
  }
  peers_.swap(fresh);
}

size_t PeerChunkResolver::num_peers() const {
  MutexLock lock(peers_mu_);
  return peers_.size();
}

std::vector<std::shared_ptr<PeerChunkResolver::Peer>>
PeerChunkResolver::AskOrder(const Hash& cid, size_t* skipped) {
  std::vector<std::shared_ptr<Peer>> peers;
  {
    MutexLock lock(peers_mu_);
    peers = peers_;
  }
  *skipped = 0;
  if (peers.empty()) return peers;
  // Start at a cid-derived offset so concurrent misses spread their
  // first ask across the peer set instead of hammering peer 0; within
  // the rotation, peers with a clean record go before suspects whose
  // cooldown has expired, and peers still cooling are not asked at all.
  const size_t start = static_cast<size_t>(cid.Mid64() % peers.size());
  std::vector<std::shared_ptr<Peer>> ordered;
  std::vector<std::shared_ptr<Peer>> suspect;
  ordered.reserve(peers.size());
  const Clock::time_point now = Clock::now();
  for (size_t i = 0; i < peers.size(); ++i) {
    std::shared_ptr<Peer>& peer = peers[(start + i) % peers.size()];
    uint64_t fail_count;
    Clock::time_point until;
    {
      MutexLock lock(peer->mu);
      fail_count = peer->consecutive_failures;
      until = peer->next_attempt;
    }
    if (fail_count == 0) {
      ordered.push_back(std::move(peer));
    } else if (now >= until) {
      suspect.push_back(std::move(peer));
    } else {
      ++*skipped;  // cooling: "could not be asked"
    }
  }
  ordered.insert(ordered.end(), std::make_move_iterator(suspect.begin()),
                 std::make_move_iterator(suspect.end()));
  return ordered;
}

rpc::RemoteService* PeerChunkResolver::GetPeerConn(Peer* peer) {
  MutexLock lock(peer->mu);
  if (peer->conn == nullptr) {
    connect_attempts_.fetch_add(1, std::memory_order_relaxed);
    rpc::RemoteServiceOptions ro;
    ro.pool_size = options_.pool_size;
    ro.chunk_cache_bytes = 0;  // peers hand chunks through; never cache
    auto connected = rpc::RemoteService::Connect(peer->endpoint, ro);
    if (!connected.ok()) return nullptr;
    peer->conn = std::move(*connected);
  }
  return peer->conn.get();
}

Status PeerChunkResolver::Fetch(const Hash& cid, Chunk* chunk) {
  std::shared_ptr<Inflight> flight;
  bool leader = false;
  {
    MutexLock lock(inflight_mu_);
    auto it = inflight_.find(cid);
    if (it == inflight_.end()) {
      flight = std::make_shared<Inflight>();
      inflight_.emplace(cid, flight);
      leader = true;
    } else {
      flight = it->second;
    }
  }

  if (!leader) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(flight->mu);
    while (!flight->done) flight->cv.Wait(flight->mu);
    if (flight->status.ok()) *chunk = flight->chunk;
    return flight->status;
  }

  const Status s = FetchFromPeers(cid, chunk);
  {
    // Deregister before publishing: a fetch arriving after the result is
    // posted starts fresh (the chunk may have appeared on a peer since).
    MutexLock lock(inflight_mu_);
    inflight_.erase(cid);
  }
  {
    MutexLock lock(flight->mu);
    flight->status = s;
    if (s.ok()) flight->chunk = *chunk;
    flight->done = true;
  }
  flight->cv.SignalAll();
  return s;
}

Status PeerChunkResolver::FetchFromPeers(const Hash& cid, Chunk* chunk) {
  size_t skipped = 0;
  std::vector<std::shared_ptr<Peer>> peers = AskOrder(cid, &skipped);
  if (peers.empty() && skipped == 0) return Status::NotFound(cid.ToShortHex());

  bool some_peer_down = skipped > 0;
  Status down_why =
      skipped > 0 ? Status::Unavailable("peer cooling off after failures")
                  : Status::OK();
  for (const auto& peer : peers) {
    rpc::RemoteService* conn = GetPeerConn(peer.get());
    if (conn == nullptr) {
      peer->RecordFailure(options_);
      some_peer_down = true;
      down_why = Status::Unavailable("connect " + peer->endpoint + " failed");
      continue;
    }
    // Outside peer->mu: RemoteService is thread-safe, and a slow peer
    // must not serialize fetches that could try the next peer.
    round_trips_.fetch_add(1, std::memory_order_relaxed);
    const Status asked = conn->GetChunkLocal(cid, chunk);
    if (asked.ok()) {
      peer->RecordSuccess();
      fetches_.fetch_add(1, std::memory_order_relaxed);
      return asked;
    }
    if (asked.IsNotFound()) {
      // Authoritative "not here" — and proof the peer is healthy.
      peer->RecordSuccess();
      continue;
    }
    // Transport trouble: the connection self-heals on a later call (once
    // the cooldown lets us try), but this fetch cannot prove absence.
    peer->RecordFailure(options_);
    some_peer_down = true;
    down_why = asked;
  }

  if (some_peer_down) {
    // Absence unproven — the only outcome that counts as a failure.
    failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("peer unreachable while resolving " +
                               cid.ToShortHex() + ": " + down_why.ToString());
  }
  // Every peer answered: the cid does not exist in the deployment.
  negatives_.fetch_add(1, std::memory_order_relaxed);
  return Status::NotFound(cid.ToShortHex());
}

void PeerChunkResolver::FetchBatchFromPeers(const std::vector<Hash>& cids,
                                            std::vector<Chunk>* chunks,
                                            std::vector<Status>* status) {
  chunks->assign(cids.size(), Chunk());
  status->assign(cids.size(), Status::OK());
  if (cids.empty()) return;

  size_t skipped = 0;
  std::vector<std::shared_ptr<Peer>> peers = AskOrder(cids[0], &skipped);

  std::vector<size_t> unresolved(cids.size());
  for (size_t i = 0; i < cids.size(); ++i) unresolved[i] = i;

  bool some_peer_down = skipped > 0;
  Status down_why =
      skipped > 0 ? Status::Unavailable("peer cooling off after failures")
                  : Status::OK();
  for (const auto& peer : peers) {
    if (unresolved.empty()) break;
    rpc::RemoteService* conn = GetPeerConn(peer.get());
    if (conn == nullptr) {
      peer->RecordFailure(options_);
      some_peer_down = true;
      down_why = Status::Unavailable("connect " + peer->endpoint + " failed");
      continue;
    }
    std::vector<Hash> want;
    want.reserve(unresolved.size());
    for (const size_t i : unresolved) want.push_back(cids[i]);
    std::vector<Chunk> got;
    std::vector<bool> present;
    // ONE round trip for every cid still missing — this is the whole
    // point of the batched path.
    round_trips_.fetch_add(1, std::memory_order_relaxed);
    const Status asked = conn->GetChunksLocal(want, &got, &present);
    if (!asked.ok()) {
      peer->RecordFailure(options_);
      some_peer_down = true;
      down_why = asked;
      continue;
    }
    peer->RecordSuccess();
    std::vector<size_t> still;
    for (size_t j = 0; j < unresolved.size(); ++j) {
      if (present[j]) {
        (*chunks)[unresolved[j]] = std::move(got[j]);
        fetches_.fetch_add(1, std::memory_order_relaxed);
      } else {
        still.push_back(unresolved[j]);
      }
    }
    unresolved.swap(still);
  }

  for (const size_t i : unresolved) {
    if (some_peer_down) {
      failures_.fetch_add(1, std::memory_order_relaxed);
      (*status)[i] = Status::Unavailable(
          "peer unreachable while resolving " + cids[i].ToShortHex() + ": " +
          down_why.ToString());
    } else {
      negatives_.fetch_add(1, std::memory_order_relaxed);
      (*status)[i] = Status::NotFound(cids[i].ToShortHex());
    }
  }
}

Status PeerChunkResolver::FetchBatch(const std::vector<Hash>& cids,
                                     std::vector<Chunk>* chunks,
                                     std::vector<bool>* resolved) {
  chunks->assign(cids.size(), Chunk());
  resolved->assign(cids.size(), false);
  if (cids.empty()) return Status::OK();

  // Single-flight integration: cids already being fetched by someone
  // else are followed; the rest are led by this batch (duplicates within
  // the batch follow the first occurrence's flight).
  struct Led {
    size_t index;
    std::shared_ptr<Inflight> flight;
  };
  std::vector<Led> led;
  std::vector<Led> following;
  {
    MutexLock lock(inflight_mu_);
    for (size_t i = 0; i < cids.size(); ++i) {
      auto it = inflight_.find(cids[i]);
      if (it == inflight_.end()) {
        auto flight = std::make_shared<Inflight>();
        inflight_.emplace(cids[i], flight);
        led.push_back({i, std::move(flight)});
      } else {
        following.push_back({i, it->second});
      }
    }
  }
  if (!following.empty()) {
    coalesced_.fetch_add(following.size(), std::memory_order_relaxed);
  }

  std::vector<Hash> led_cids;
  led_cids.reserve(led.size());
  for (const Led& l : led) led_cids.push_back(cids[l.index]);
  std::vector<Chunk> led_chunks;
  std::vector<Status> led_status;
  FetchBatchFromPeers(led_cids, &led_chunks, &led_status);

  Status worst = Status::OK();
  {
    MutexLock lock(inflight_mu_);
    for (const Led& l : led) inflight_.erase(cids[l.index]);
  }
  for (size_t j = 0; j < led.size(); ++j) {
    const Led& l = led[j];
    {
      MutexLock lock(l.flight->mu);
      l.flight->status = led_status[j];
      if (led_status[j].ok()) l.flight->chunk = led_chunks[j];
      l.flight->done = true;
    }
    l.flight->cv.SignalAll();
    if (led_status[j].ok()) {
      (*chunks)[l.index] = std::move(led_chunks[j]);
      (*resolved)[l.index] = true;
    } else if (worst.ok() || led_status[j].IsUnavailable()) {
      worst = led_status[j];
    }
  }
  for (const Led& f : following) {
    MutexLock lock(f.flight->mu);
    while (!f.flight->done) f.flight->cv.Wait(f.flight->mu);
    if (f.flight->status.ok()) {
      (*chunks)[f.index] = f.flight->chunk;
      (*resolved)[f.index] = true;
    } else if (worst.ok() || f.flight->status.IsUnavailable()) {
      worst = f.flight->status;
    }
  }
  return worst;
}

}  // namespace fb
