// PeerChunkResolver: server-to-server chunk resolution (Section 4.6).
//
// Every node of a deployment can read every chunk of the shared pool. A
// standalone servlet process, however, physically holds only the chunks
// written through it — so a version-addressed read or a server-side
// traversal of a tree built elsewhere misses locally. The resolver is
// that servlet's view of "the rest of the pool": given a cid that missed
// the local store, it asks each peer servlet for the chunk over the RPC
// transport (the peer answers from its LOCAL store only, so two servlets
// missing the same cid never ping-pong).
//
// FetchBatch is the amortized path: one network round trip asks a peer
// for EVERY cid still missing, so a traversal that misses N chunks costs
// round trips proportional to the peers asked, not to N.
//
// Concurrency: fetches for the same cid are single-flighted — one caller
// goes to the network, every concurrent caller for that cid waits and
// shares the result. Connections to peers are opened lazily (peers may
// boot in any order) and kept pooled. A peer that fails (unreachable, or
// a transport error mid-call) enters exponential-backoff cooldown: until
// the cooldown expires it is skipped outright — an unreachable peer must
// not cost a fresh failed TCP connect on every fetch — and healthy peers
// are asked before peers with a failure history.
//
// Negative results are typed: NotFound means every peer answered
// authoritatively "I don't have it" (the cid does not exist in the
// deployment); Unavailable means at least one peer could not be asked —
// down, or skipped in cooldown — so absence was NOT proven and the
// caller must not treat the miss as authoritative. The counters keep the
// same distinction: a negative is a proven absence, a failure is an
// unproven one.

#ifndef FORKBASE_CHUNK_PEER_RESOLVER_H_
#define FORKBASE_CHUNK_PEER_RESOLVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "chunk/chunk.h"
#include "util/mutex.h"
#include "util/status.h"

namespace fb {

namespace rpc {
class RemoteService;
}  // namespace rpc

struct PeerResolverOptions {
  // Connection pool size per peer endpoint.
  size_t pool_size = 1;
  // Failure cooldown: after the k-th consecutive failure a peer is not
  // asked again for initial * 2^(k-1) ms, capped at `max`. While
  // cooling, the peer counts as "could not be asked" (absence unproven).
  uint64_t backoff_initial_ms = 100;
  uint64_t backoff_max_ms = 2000;
};

class PeerChunkResolver {
 public:
  explicit PeerChunkResolver(std::vector<std::string> peers = {},
                             PeerResolverOptions options = {});
  ~PeerChunkResolver();
  PeerChunkResolver(const PeerChunkResolver&) = delete;
  PeerChunkResolver& operator=(const PeerChunkResolver&) = delete;

  // Replaces the peer set incrementally: endpoints already present keep
  // their pooled connections and backoff health, new endpoints start
  // cold, and endpoints missing from the new list are dropped (fetches
  // that already snapshotted them finish unharmed). Safe to call while
  // fetches are in flight — membership changes (a replica joining its
  // group) must not reconnect the world.
  void SetPeers(std::vector<std::string> peers);

  size_t num_peers() const;

  // Resolves `cid` from the peer set (single-flighted per cid).
  //   OK          -> *chunk holds the peer's copy.
  //   NotFound    -> every peer answered; nobody has it.
  //   Unavailable -> some peer was unreachable (or cooling off);
  //                  absence unproven.
  Status Fetch(const Hash& cid, Chunk* chunk);

  // Resolves many cids at once: each round trip asks a peer for every
  // cid still missing. (*resolved)[i] says whether (*chunks)[i] was
  // found. The status aggregates the leftovers with Fetch's taxonomy:
  // OK when everything resolved, NotFound when the unresolved cids are
  // proven absent, Unavailable when any absence is unproven. Per-cid
  // single-flight still holds (a batch member coalesces with a
  // concurrent Fetch of the same cid).
  Status FetchBatch(const std::vector<Hash>& cids, std::vector<Chunk>* chunks,
                    std::vector<bool>* resolved);

  // Lifetime counters (surfaced through ChunkStoreStats by the stores
  // that embed a resolver).
  uint64_t fetches() const {
    return fetches_.load(std::memory_order_relaxed);
  }
  // Misses where some peer could not be asked: absence unproven.
  uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }
  // Misses every peer authoritatively denied: proven absent.
  uint64_t negatives() const {
    return negatives_.load(std::memory_order_relaxed);
  }
  // Network calls issued (the batched path resolves many cids per trip).
  uint64_t round_trips() const {
    return round_trips_.load(std::memory_order_relaxed);
  }
  // TCP connects attempted (backoff's test surface: a cooling peer must
  // not add these).
  uint64_t connect_attempts() const {
    return connect_attempts_.load(std::memory_order_relaxed);
  }
  // Fetches that piggybacked on another caller's in-flight fetch.
  uint64_t coalesced_fetches() const {
    return coalesced_.load(std::memory_order_relaxed);
  }

 private:
  struct Peer;      // endpoint + transport + health (defined in .cc)
  struct Inflight;  // single-flight rendezvous state

  // Snapshots the peer set in ask order for this cid: healthy peers on
  // the cid-derived rotation first, then cooldown-expired suspects.
  // Peers still cooling are left out and counted in *skipped.
  std::vector<std::shared_ptr<Peer>> AskOrder(const Hash& cid,
                                              size_t* skipped);
  // Returns the peer's connection, opening it if needed; records the
  // outcome in the peer's health. Null when the connect failed.
  rpc::RemoteService* GetPeerConn(Peer* peer);

  // The network half of Fetch (no single-flight bookkeeping).
  Status FetchFromPeers(const Hash& cid, Chunk* chunk);
  // The network half of FetchBatch; fills per-cid results for `cids`.
  void FetchBatchFromPeers(const std::vector<Hash>& cids,
                           std::vector<Chunk>* chunks,
                           std::vector<Status>* status);

  const PeerResolverOptions options_;

  // Guards only the peer-set snapshot; per-peer health lives under each
  // Peer's own mutex (same rank, never held together with this one).
  mutable Mutex peers_mu_{kRankPeerResolver, "peer-set"};
  std::vector<std::shared_ptr<Peer>> peers_ GUARDED_BY(peers_mu_);

  Mutex inflight_mu_{kRankPeerFlight, "peer-inflight"};
  std::unordered_map<Hash, std::shared_ptr<Inflight>, HashHasher> inflight_
      GUARDED_BY(inflight_mu_);

  std::atomic<uint64_t> fetches_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> negatives_{0};
  std::atomic<uint64_t> round_trips_{0};
  std::atomic<uint64_t> connect_attempts_{0};
  std::atomic<uint64_t> coalesced_{0};
};

}  // namespace fb

#endif  // FORKBASE_CHUNK_PEER_RESOLVER_H_
