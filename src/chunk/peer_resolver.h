// PeerChunkResolver: server-to-server chunk resolution (Section 4.6).
//
// Every node of a deployment can read every chunk of the shared pool. A
// standalone servlet process, however, physically holds only the chunks
// written through it — so a version-addressed read or a server-side
// traversal of a tree built elsewhere misses locally. The resolver is
// that servlet's view of "the rest of the pool": given a cid that missed
// the local store, it asks each peer servlet for the chunk over the RPC
// transport (the peer answers from its LOCAL store only, so two servlets
// missing the same cid never ping-pong).
//
// Concurrency: fetches for the same cid are single-flighted — one caller
// goes to the network, every concurrent caller for that cid waits and
// shares the result. Connections to peers are opened lazily (peers may
// boot in any order) and kept pooled; a peer that cannot be reached is
// retried on the next fetch.
//
// Negative results are typed: NotFound means every peer answered
// authoritatively "I don't have it" (the cid does not exist in the
// deployment); Unavailable means at least one peer could not be asked,
// so absence was NOT proven and the caller must not treat the miss as
// authoritative.

#ifndef FORKBASE_CHUNK_PEER_RESOLVER_H_
#define FORKBASE_CHUNK_PEER_RESOLVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "chunk/chunk.h"
#include "util/status.h"

namespace fb {

struct PeerResolverOptions {
  // Connection pool size per peer endpoint.
  size_t pool_size = 1;
};

class PeerChunkResolver {
 public:
  explicit PeerChunkResolver(std::vector<std::string> peers = {},
                             PeerResolverOptions options = {});
  ~PeerChunkResolver();
  PeerChunkResolver(const PeerChunkResolver&) = delete;
  PeerChunkResolver& operator=(const PeerChunkResolver&) = delete;

  // Replaces the peer set (drops existing connections). Late binding for
  // deployments whose endpoints are not known at construction time
  // (ephemeral ports: two servers must start before either knows the
  // other's address). Not meant to race in-flight fetches.
  void SetPeers(std::vector<std::string> peers);

  size_t num_peers() const;

  // Resolves `cid` from the peer set (single-flighted per cid).
  //   OK          -> *chunk holds the peer's copy.
  //   NotFound    -> every peer answered; nobody has it.
  //   Unavailable -> some peer was unreachable; absence unproven.
  Status Fetch(const Hash& cid, Chunk* chunk);

  // Lifetime counters (surfaced through ChunkStoreStats by the stores
  // that embed a resolver).
  uint64_t fetches() const {
    return fetches_.load(std::memory_order_relaxed);
  }
  uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }
  // Fetches that piggybacked on another caller's in-flight fetch.
  uint64_t coalesced_fetches() const {
    return coalesced_.load(std::memory_order_relaxed);
  }

 private:
  struct Peer;      // endpoint + lazily-opened transport (defined in .cc)
  struct Inflight;  // single-flight rendezvous state

  // The network half of Fetch (no single-flight bookkeeping).
  Status FetchFromPeers(const Hash& cid, Chunk* chunk);

  const PeerResolverOptions options_;

  mutable std::mutex peers_mu_;
  std::vector<std::shared_ptr<Peer>> peers_;

  std::mutex inflight_mu_;
  std::unordered_map<Hash, std::shared_ptr<Inflight>, HashHasher> inflight_;

  std::atomic<uint64_t> fetches_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> coalesced_{0};
};

}  // namespace fb

#endif  // FORKBASE_CHUNK_PEER_RESOLVER_H_
