// AdmissionChunkCache: a sharded, byte-capped block cache with a
// TinyLFU-style admission policy, for the disk-read path (ROADMAP
// item 4a: "block/chunk cache with an admission policy in front of
// LogChunkStore disk reads").
//
// Why not just LruChunkCache? Plain LRU is scan-vulnerable: a single
// pass over a large dataset (bulk GetBatch, a POS-tree diff across an
// old version) evicts the whole hot set while inserting chunks that
// will never be read again. This cache keeps a compact frequency
// sketch (a count-min sketch with periodic halving — the "TinyLFU"
// aging scheme) over every cid it has *seen*, and on insertion under
// pressure admits the incoming chunk only if its estimated frequency
// beats the eviction victim's. One-touch scan chunks lose that duel
// and are rejected without disturbing residents.
//
// Each shard is a segmented LRU: new admissions enter a probation
// segment; a second hit promotes to the protected segment (capped at
// ~80% of the shard budget, overflow demotes back to probation). The
// eviction victim is always the probation tail, so even admitted
// once-hit chunks cannot flush the protected hot set.
//
// Chunks are immutable and content-addressed, so there is no
// invalidation — entries leave only by eviction.
//
// Thread-safe: one mutex per shard (cid-sliced), frequency sketch and
// stat counters are shard-local under the same mutex, exposed totals
// are aggregated on demand.

#ifndef FORKBASE_CHUNK_BLOCK_CACHE_H_
#define FORKBASE_CHUNK_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chunk/chunk.h"
#include "util/mutex.h"

namespace fb {

struct BlockCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t hit_bytes = 0;   // serialized bytes served from the cache
  uint64_t miss_bytes = 0;  // serialized bytes fetched after a miss
                            // (counted at insertion attempt time)
  uint64_t admissions = 0;  // inserts that entered the cache
  uint64_t rejections = 0;  // inserts turned away by the admission duel
  uint64_t evictions = 0;   // residents displaced to fit admissions
};

class AdmissionChunkCache {
 public:
  static constexpr size_t kDefaultCapacityBytes = 32u << 20;
  static constexpr size_t kDefaultShards = 8;

  explicit AdmissionChunkCache(size_t capacity_bytes = kDefaultCapacityBytes,
                               size_t n_shards = kDefaultShards);

  // Copies the cached chunk into *chunk and bumps its frequency and
  // recency (probation hit promotes to protected). Counts hit/miss.
  bool Get(const Hash& cid, Chunk* chunk);

  // Offers a chunk for admission. Under byte pressure the incoming
  // chunk duels the probation-tail victim on sketch frequency; the
  // loser stays out (rejection) or leaves (eviction). A chunk larger
  // than a whole shard's budget is never cached.
  void Put(const Hash& cid, const Chunk& chunk);

  bool Contains(const Hash& cid) const;

  size_t capacity_bytes() const { return capacity_; }
  size_t size_bytes() const;
  size_t entries() const;
  BlockCacheStats stats() const;

 private:
  // A 4-row count-min sketch with 8-bit saturating counters, halved
  // ("aged") once the number of recorded touches reaches sample_size —
  // keeps frequency estimates fresh so yesterday's hot set cannot
  // permanently outvote today's. Shard-local; caller holds the shard
  // mutex.
  class FrequencySketch {
   public:
    void Reset(size_t counters);  // rounded up to a power of two
    void Touch(uint64_t cid_hash);
    uint32_t Estimate(uint64_t cid_hash) const;

   private:
    void Age();
    std::vector<uint8_t> rows_[4];
    uint64_t mask_ = 0;
    uint64_t touches_ = 0;
    uint64_t sample_size_ = 0;
  };

  struct Entry {
    Hash cid;
    Chunk chunk;
    size_t charge = 0;
    bool is_protected = false;
  };
  using EntryList = std::list<Entry>;

  struct Shard {
    mutable Mutex mu{kRankCache, "block-cache-shard"};
    EntryList probation GUARDED_BY(mu);  // front = most recent
    EntryList protected_seg GUARDED_BY(mu);
    std::unordered_map<Hash, EntryList::iterator, HashHasher> index
        GUARDED_BY(mu);
    size_t bytes GUARDED_BY(mu) = 0;
    size_t protected_bytes GUARDED_BY(mu) = 0;
    FrequencySketch sketch GUARDED_BY(mu);
    BlockCacheStats stats GUARDED_BY(mu);
  };

  Shard& ShardFor(const Hash& cid) const {
    return *shards_[static_cast<size_t>(cid.Mid64()) % shards_.size()];
  }

  // Frees probation-tail entries until `incoming` fits; returns false
  // (rejecting the insert) if the duel says the incoming chunk is
  // colder than a victim it would displace.
  bool MakeRoom(Shard& s, uint64_t incoming_hash, size_t incoming_charge)
      REQUIRES(s.mu);
  // Caps the protected segment, demoting overflow.
  void BalanceProtected(Shard& s) REQUIRES(s.mu);

  const size_t capacity_;
  const size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace fb

#endif  // FORKBASE_CHUNK_BLOCK_CACHE_H_
