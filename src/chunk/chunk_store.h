// Chunk storage (Section 4.4): a content-addressed key-value store whose
// key is a cid and whose value is the chunk's raw bytes.
//
// Because chunks are immutable and content-addressed, a Put of an existing
// cid is a dedup hit and returns immediately. Two implementations:
//
//  * MemChunkStore — hash map, used by tests and as the servlet cache.
//  * LogChunkStore — append-only log-structured segments on disk with an
//    in-memory cid -> (segment, offset) index; mirrors the paper's
//    persistence layout and supports recovery by replaying segments.
//
// ChunkStorePool models the distributed pool: N store instances with
// cid-hash partitioning (the second layer of the two-layer partitioning
// scheme of Section 4.6).

#ifndef FORKBASE_CHUNK_CHUNK_STORE_H_
#define FORKBASE_CHUNK_CHUNK_STORE_H_

#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "chunk/chunk.h"
#include "util/status.h"

namespace fb {

// Counters exposed for benchmarks (dedup ratios, Table 4, Fig 13/15/16).
struct ChunkStoreStats {
  uint64_t puts = 0;          // Put calls
  uint64_t dedup_hits = 0;    // Puts that found an existing cid
  uint64_t gets = 0;          // Get calls
  uint64_t chunks = 0;        // unique chunks currently stored
  uint64_t stored_bytes = 0;  // bytes of unique chunks (serialized)
  uint64_t logical_bytes = 0; // bytes as if every Put were stored
};

class ChunkStore {
 public:
  virtual ~ChunkStore() = default;

  // Stores `chunk` under its cid. Verifies cid integrity when the caller
  // provides one (tamper evidence at the chunk level). Dedups silently.
  virtual Status Put(const Hash& cid, const Chunk& chunk) = 0;

  // Convenience: computes the cid, stores, and returns it.
  Result<Hash> Put(const Chunk& chunk) {
    Hash cid = chunk.ComputeCid();
    Status s = Put(cid, chunk);
    if (!s.ok()) return s;
    return cid;
  }

  // Fetches the chunk for `cid`; NotFound if absent.
  virtual Status Get(const Hash& cid, Chunk* chunk) const = 0;

  virtual bool Contains(const Hash& cid) const = 0;

  virtual ChunkStoreStats stats() const = 0;
};

// In-memory content-addressed store. Thread-safe.
class MemChunkStore : public ChunkStore {
 public:
  using ChunkStore::Put;
  Status Put(const Hash& cid, const Chunk& chunk) override;
  Status Get(const Hash& cid, Chunk* chunk) const override;
  bool Contains(const Hash& cid) const override;
  ChunkStoreStats stats() const override;

  // Invokes `fn` for every stored chunk (snapshot of cids; used by
  // anti-entropy repair and storage audits).
  void ForEach(const std::function<void(const Hash&, const Chunk&)>& fn) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<Hash, Chunk, HashHasher> chunks_;
  ChunkStoreStats stats_;
};

// Log-structured persistent store. Chunks are appended to segment files
// ("<dir>/seg-<n>.fbl"); a segment rolls over at segment_size bytes. The
// cid index is rebuilt on Open() by scanning segments, which also verifies
// every record's cid (corruption detection).
//
// Record format: [fixed32 len][cid 32B][chunk bytes (len)]
class LogChunkStore : public ChunkStore {
 public:
  static constexpr uint64_t kDefaultSegmentSize = 64ull << 20;

  // Opens (creating if necessary) a store rooted at `dir`.
  static Result<std::unique_ptr<LogChunkStore>> Open(
      const std::string& dir, uint64_t segment_size = kDefaultSegmentSize);

  ~LogChunkStore() override;

  using ChunkStore::Put;
  Status Put(const Hash& cid, const Chunk& chunk) override;
  Status Get(const Hash& cid, Chunk* chunk) const override;
  bool Contains(const Hash& cid) const override;
  ChunkStoreStats stats() const override;

  // Forces buffered writes to the OS.
  Status Flush();

 private:
  struct Location {
    uint32_t segment;
    uint64_t offset;  // of the record header
    uint32_t length;  // chunk bytes length
  };

  LogChunkStore(std::string dir, uint64_t segment_size)
      : dir_(std::move(dir)), segment_size_(segment_size) {}

  Status Recover();
  Status RollSegment();
  Status ReadRecord(const Location& loc, Chunk* chunk) const;
  std::string SegmentPath(uint32_t n) const;

  std::string dir_;
  uint64_t segment_size_;

  mutable std::mutex mu_;
  std::unordered_map<Hash, Location, HashHasher> index_;
  ChunkStoreStats stats_;
  std::FILE* active_ = nullptr;
  uint32_t active_id_ = 0;
  uint64_t active_off_ = 0;
};

// A pool of chunk-store instances partitioned by cid hash — the bottom
// layer of the two-layer partitioning scheme. All instances are accessible
// from any servlet (shared pool semantics).
class ChunkStorePool {
 public:
  explicit ChunkStorePool(size_t n_instances);

  size_t size() const { return stores_.size(); }

  // The instance responsible for `cid`.
  ChunkStore* Route(const Hash& cid) {
    return stores_[PartitionOf(cid)].get();
  }
  const ChunkStore* Route(const Hash& cid) const {
    return stores_[PartitionOf(cid)].get();
  }

  size_t PartitionOf(const Hash& cid) const {
    return static_cast<size_t>(cid.Low64() % stores_.size());
  }

  ChunkStore* instance(size_t i) { return stores_[i].get(); }
  const ChunkStore* instance(size_t i) const { return stores_[i].get(); }

  Status Put(const Hash& cid, const Chunk& chunk) {
    return Route(cid)->Put(cid, chunk);
  }
  Status Get(const Hash& cid, Chunk* chunk) const {
    return Route(cid)->Get(cid, chunk);
  }

  // Aggregate and per-instance stats (Fig 15 storage balance).
  ChunkStoreStats TotalStats() const;
  std::vector<ChunkStoreStats> PerInstanceStats() const;

 private:
  std::vector<std::unique_ptr<MemChunkStore>> stores_;
};

}  // namespace fb

#endif  // FORKBASE_CHUNK_CHUNK_STORE_H_
