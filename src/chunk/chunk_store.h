// Chunk storage (Section 4.4): a content-addressed key-value store whose
// key is a cid and whose value is the chunk's raw bytes.
//
// Because chunks are immutable and content-addressed, a Put of an existing
// cid is a dedup hit and returns immediately. Two implementations:
//
//  * MemChunkStore — striped (sharded) hash map, used by tests and as the
//    servlet cache. Stripes let concurrent writers touch disjoint shards
//    without contending on one global mutex.
//  * LogChunkStore — append-only log-structured segments on disk with an
//    in-memory cid -> (segment, offset) index; mirrors the paper's
//    persistence layout and supports recovery by replaying segments.
//
// ChunkStorePool models the distributed pool: N store instances with
// cid-hash partitioning (the second layer of the two-layer partitioning
// scheme of Section 4.6).
//
// All stores are thread-safe. The batched PutBatch/GetBatch entry points
// amortize locking on the bulk-load hot path: callers that produce many
// chunks (POS-tree construction, segment replication) should prefer them
// over per-chunk Put/Get.

#ifndef FORKBASE_CHUNK_CHUNK_STORE_H_
#define FORKBASE_CHUNK_CHUNK_STORE_H_

#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "chunk/chunk.h"
#include "util/mutex.h"
#include "util/status.h"

namespace fb {

class AdmissionChunkCache;

// Counters exposed for benchmarks (dedup ratios, Table 4, Fig 13/15/16).
// This is a plain snapshot type; stores maintain the live counters in
// AtomicChunkStoreStats and materialize a consistent-enough snapshot on
// stats().
struct ChunkStoreStats {
  uint64_t puts = 0;          // Put calls
  uint64_t dedup_hits = 0;    // Puts that found an existing cid
  uint64_t gets = 0;          // Get calls
  uint64_t chunks = 0;        // unique chunks currently stored
  uint64_t stored_bytes = 0;  // bytes of unique chunks (serialized)
  uint64_t logical_bytes = 0; // bytes as if every Put were stored
  // Read-cache counters (stores with a cache in front of a slow read
  // path: the ServletChunkStore pool-scan fallback, the LogChunkStore /
  // LsmChunkStore block cache; 0 elsewhere). Bytes mirror the counts:
  // hit_bytes are serialized bytes served from the cache, miss_bytes
  // serialized bytes fetched from the slow path and offered back.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_hit_bytes = 0;
  uint64_t cache_miss_bytes = 0;
  // Admission-policy counters (caches that can turn an insert away —
  // the block cache's TinyLFU duel; 0 for always-admit caches).
  uint64_t cache_admissions = 0;
  uint64_t cache_rejections = 0;
  // Server-to-server resolution counters (stores backed by a
  // PeerChunkResolver; 0 elsewhere). A fetch counts once per resolved
  // miss, not per peer asked. A negative is a miss every peer answered
  // authoritatively — the cid does not exist in the deployment; a
  // failure is a miss where some peer could not be asked, so absence
  // was never proven. Round trips count network calls, not chunks: the
  // batched fetch path resolves many cids per round trip.
  uint64_t peer_fetches = 0;
  uint64_t peer_fetch_failures = 0;
  uint64_t peer_fetch_negatives = 0;
  uint64_t peer_round_trips = 0;

  // Accumulates another snapshot (pool / replica / view aggregation).
  void Accumulate(const ChunkStoreStats& o) {
    puts += o.puts;
    dedup_hits += o.dedup_hits;
    gets += o.gets;
    chunks += o.chunks;
    stored_bytes += o.stored_bytes;
    logical_bytes += o.logical_bytes;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    cache_hit_bytes += o.cache_hit_bytes;
    cache_miss_bytes += o.cache_miss_bytes;
    cache_admissions += o.cache_admissions;
    cache_rejections += o.cache_rejections;
    peer_fetches += o.peer_fetches;
    peer_fetch_failures += o.peer_fetch_failures;
    peer_fetch_negatives += o.peer_fetch_negatives;
    peer_round_trips += o.peer_round_trips;
  }
};

// Lock-free live counters shared by all store implementations. Individual
// increments are atomic; a snapshot taken while writers are active may mix
// counters from different instants, but once writers quiesce the snapshot
// is exact (the invariant the concurrency tests assert).
class AtomicChunkStoreStats {
 public:
  void RecordPut(uint64_t serialized_bytes, bool dedup_hit) {
    puts_.fetch_add(1, std::memory_order_relaxed);
    logical_bytes_.fetch_add(serialized_bytes, std::memory_order_relaxed);
    if (dedup_hit) {
      dedup_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      chunks_.fetch_add(1, std::memory_order_relaxed);
      stored_bytes_.fetch_add(serialized_bytes, std::memory_order_relaxed);
    }
  }
  // const: Get() is logically read-only on the store but still counted.
  void RecordGet() const { gets_.fetch_add(1, std::memory_order_relaxed); }
  // Recovery re-indexes existing chunks without counting a logical Put.
  void RecordRecoveredChunk(uint64_t serialized_bytes) {
    chunks_.fetch_add(1, std::memory_order_relaxed);
    stored_bytes_.fetch_add(serialized_bytes, std::memory_order_relaxed);
  }

  ChunkStoreStats Snapshot() const {
    ChunkStoreStats s;
    s.puts = puts_.load(std::memory_order_relaxed);
    s.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
    s.gets = gets_.load(std::memory_order_relaxed);
    s.chunks = chunks_.load(std::memory_order_relaxed);
    s.stored_bytes = stored_bytes_.load(std::memory_order_relaxed);
    s.logical_bytes = logical_bytes_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<uint64_t> puts_{0};
  std::atomic<uint64_t> dedup_hits_{0};
  mutable std::atomic<uint64_t> gets_{0};
  std::atomic<uint64_t> chunks_{0};
  std::atomic<uint64_t> stored_bytes_{0};
  std::atomic<uint64_t> logical_bytes_{0};
};

// A batch of (cid, chunk) pairs for the bulk write path.
using ChunkBatch = std::vector<std::pair<Hash, Chunk>>;

class ChunkStore;

// Accumulates chunks and writes them through ChunkStore::PutBatch in
// fixed-size batches — the shared building block for bulk producers
// (POS-tree leaf chunker, index-level builder). Callers must Flush()
// before any buffered chunk is read back; a writer abandoned without
// Flush() simply never stores its tail (harmless: chunks are
// content-addressed, so nothing dangles).
class BatchedChunkWriter {
 public:
  static constexpr size_t kDefaultBatchSize = 32;

  explicit BatchedChunkWriter(ChunkStore* store,
                              size_t batch_size = kDefaultBatchSize)
      : store_(store), batch_size_(batch_size == 0 ? 1 : batch_size) {}

  // Buffers `chunk` and returns its cid; flushes when the buffer fills.
  Result<Hash> Add(Chunk chunk);

  // Writes all buffered chunks.
  Status Flush();

 private:
  ChunkStore* store_;
  size_t batch_size_;
  ChunkBatch pending_;
};

class ChunkStore {
 public:
  virtual ~ChunkStore() = default;

  // Stores `chunk` under its cid. Verifies cid integrity when the caller
  // provides one (tamper evidence at the chunk level). Dedups silently.
  virtual Status Put(const Hash& cid, const Chunk& chunk) = 0;

  // Convenience: computes the cid, stores, and returns it.
  Result<Hash> Put(const Chunk& chunk) {
    Hash cid = chunk.ComputeCid();
    Status s = Put(cid, chunk);
    if (!s.ok()) return s;
    return cid;
  }

  // Fetches the chunk for `cid`; NotFound if absent.
  virtual Status Get(const Hash& cid, Chunk* chunk) const = 0;

  virtual bool Contains(const Hash& cid) const = 0;

  // Stores every pair in `batch`, dedup-counting each element exactly as
  // the equivalent sequence of Put calls would. Implementations override
  // this to acquire each lock once per batch instead of once per chunk;
  // the default simply loops over Put.
  virtual Status PutBatch(const ChunkBatch& batch);

  // Fetches `cids` in order into `*chunks` (resized to cids.size()).
  // Fails with NotFound on the first absent cid.
  virtual Status GetBatch(const std::vector<Hash>& cids,
                          std::vector<Chunk>* chunks) const;

  virtual ChunkStoreStats stats() const = 0;
};

// In-memory content-addressed store, striped over `n_shards` independent
// (mutex, hash map) pairs. Shard choice uses a different 64-bit slice of
// the cid than ChunkStorePool's partitioner, so striping stays uniform
// even inside a single pool partition. Thread-safe.
//
// PutBatch group-commits: concurrent batched writers enqueue their
// records and one caller (the combiner) drains the merged queue in a
// single pass that takes each shard's lock once per drained group —
// the same combiner discipline as LogChunkStore, minus durability.
// N servlet threads flushing coalesced put-groups into one pool
// instance contend on the queue mutex only, not on every stripe.
class MemChunkStore : public ChunkStore {
 public:
  static constexpr size_t kDefaultShards = 16;

  explicit MemChunkStore(size_t n_shards = kDefaultShards);

  using ChunkStore::Put;
  Status Put(const Hash& cid, const Chunk& chunk) override;
  Status Get(const Hash& cid, Chunk* chunk) const override;
  bool Contains(const Hash& cid) const override;
  Status PutBatch(const ChunkBatch& batch) override;
  Status GetBatch(const std::vector<Hash>& cids,
                  std::vector<Chunk>* chunks) const override;
  ChunkStoreStats stats() const override;

  size_t n_shards() const { return shards_.size(); }

  // Invokes `fn` for every stored chunk (snapshot of cids; used by
  // anti-entropy repair and storage audits).
  void ForEach(const std::function<void(const Hash&, const Chunk&)>& fn) const;

 private:
  struct Shard {
    // Same-rank: CommitGroup/GetBatch/ForEach visit shards one at a time
    // in index order (never nested), but the sibling walk is flagged so
    // a future hand-over-hand pass stays legal.
    mutable Mutex mu{kRankStore, "mem-shard", kSameRankOk};
    std::unordered_map<Hash, Chunk, HashHasher> chunks GUARDED_BY(mu);
  };

  // A record enqueued for the PutBatch group commit. Pointers refer
  // into the caller's batch, which outlives the group: the caller
  // blocks until its records are inserted.
  struct PendingInsert {
    const Hash* cid;
    const Chunk* chunk;
  };

  size_t ShardIndex(const Hash& cid) const {
    return static_cast<size_t>(cid.Mid64() % shards_.size());
  }

  // Enqueues `n` records and blocks until they are inserted (possibly
  // becoming the combiner that inserts them).
  Status EnqueueAndWait(const PendingInsert* entries, size_t n)
      EXCLUDES(gc_mu_);
  // Inserts one drained group: groups records by shard, then takes each
  // shard's lock exactly once. Never holds gc_mu_ (the lock-rank order
  // combiner -> shard also forbids the reverse nesting at runtime).
  void CommitGroup(const std::vector<PendingInsert>& group)
      EXCLUDES(gc_mu_);

  std::vector<std::unique_ptr<Shard>> shards_;

  // Group-commit queue (PutBatch only; single Put takes its stripe
  // directly). gc_mu_ guards the bookkeeping below and is never held
  // while shard locks are.
  Mutex gc_mu_{kRankStoreCombiner, "mem-gc"};
  CondVar gc_cv_;
  std::vector<PendingInsert> gc_queue_ GUARDED_BY(gc_mu_);
  uint64_t gc_enqueued_ GUARDED_BY(gc_mu_) = 0;
  uint64_t gc_done_ GUARDED_BY(gc_mu_) = 0;
  bool gc_combiner_active_ GUARDED_BY(gc_mu_) = false;

  AtomicChunkStoreStats stats_;
};

// When appended chunks become durable on disk (LogChunkStore):
//  * kNone   — never fsync; data reaches the OS lazily (fastest, survives
//              process crashes but not power loss).
//  * kBatch  — the group-commit combiner fsyncs once per flushed group:
//              every Put/PutBatch is durable when it returns, at one fsync
//              amortized over all concurrently-committing writers.
//  * kAlways — fsync after every individual record (strictest; defeats
//              group-commit amortization by design).
//  * kQuorum — local behavior of kBatch, plus the engine-level commit
//              barrier: a ForkBase mutation does not return until a
//              majority of the replication group has acked the log
//              records it produced (see src/replication/). Stores treat
//              it exactly as kBatch; the quorum wait lives above them.
enum class DurabilityPolicy { kNone, kBatch, kAlways, kQuorum };

struct LogStoreOptions {
  uint64_t segment_size = 64ull << 20;
  DurabilityPolicy durability = DurabilityPolicy::kBatch;
  // Byte budget for the AdmissionChunkCache fronting disk reads
  // (0 disables it). Read-through: a Get checks the cache before
  // touching the segment index and offers the chunk back after a disk
  // read; the TinyLFU admission duel keeps one-touch scans out.
  uint64_t block_cache_bytes = 32ull << 20;
};

// Log-structured persistent store. Chunks are appended to segment files
// ("<dir>/seg-<n>.fbl"); a segment rolls over at segment_size bytes. The
// cid index is rebuilt on Open() by scanning segments, which also verifies
// every record's cid (corruption detection). A truncated record at the
// very tail of the last segment — the footprint of a crash mid
// group-commit — is cut off and recovery keeps every fully-flushed record;
// a short or tampered record anywhere else is still Corruption.
//
// Thread-safe, with group commit on the write path: concurrent Put /
// PutBatch callers enqueue their records and one of them (the combiner)
// drains the queue, writing each group with a single fwrite and applying
// the durability policy once per group, so the durable write path no
// longer serializes per chunk. A writer returns only after its own
// records are committed. Reads resolve the record location under the
// index lock but perform file I/O outside it, so Gets of already-flushed
// records proceed in parallel with appends.
//
// Record format: [fixed32 len][cid 32B][chunk bytes (len)]
class LogChunkStore : public ChunkStore {
 public:
  static constexpr uint64_t kDefaultSegmentSize = 64ull << 20;

  // Opens (creating if necessary) a store rooted at `dir`.
  static Result<std::unique_ptr<LogChunkStore>> Open(const std::string& dir,
                                                     LogStoreOptions options);
  static Result<std::unique_ptr<LogChunkStore>> Open(
      const std::string& dir, uint64_t segment_size = kDefaultSegmentSize);

  ~LogChunkStore() override;

  using ChunkStore::Put;
  Status Put(const Hash& cid, const Chunk& chunk) override;
  Status Get(const Hash& cid, Chunk* chunk) const override;
  bool Contains(const Hash& cid) const override;
  Status PutBatch(const ChunkBatch& batch) override;
  Status GetBatch(const std::vector<Hash>& cids,
                  std::vector<Chunk>* chunks) const override;
  ChunkStoreStats stats() const override;

  // Forces buffered writes to the OS.
  Status Flush();

 private:
  struct Location {
    uint32_t segment;
    uint64_t offset;  // of the record header
    uint32_t length;  // chunk bytes length
  };

  // A record enqueued for group commit. The pointers refer into the
  // caller's batch, which outlives the group: the caller blocks until its
  // records are committed.
  struct PendingAppend {
    const Hash* cid;
    const Chunk* chunk;
  };

  // Defined in chunk_store.cc: the ctor/dtor pair needs the complete
  // AdmissionChunkCache type behind block_cache_.
  LogChunkStore(std::string dir, LogStoreOptions options);

  Status Recover() EXCLUDES(mu_);
  Status RollSegment() REQUIRES(mu_);
  // Enqueues `n` records and blocks until they are committed (possibly
  // becoming the combiner that commits them).
  Status EnqueueAndWait(const PendingAppend* entries, size_t n)
      EXCLUDES(gc_mu_);
  // Writes one drained group: dedups against the index, packs the fresh
  // records into contiguous buffers (one fwrite each), applies the
  // durability policy, publishes index entries. Takes mu_; never holds
  // gc_mu_.
  Status CommitGroup(const std::vector<PendingAppend>& group)
      EXCLUDES(mu_, gc_mu_);
  // Writes the packed records in *buf with one fwrite, syncs per
  // policy, then publishes the staged index entries and clears all four
  // staging containers. CommitGroup's inner step.
  Status FlushStaged(Bytes* buf,
                     std::vector<std::pair<Hash, Location>>* staged,
                     std::vector<uint64_t>* staged_sizes,
                     std::unordered_set<Hash, HashHasher>* staged_cids)
      REQUIRES(mu_);
  // fflush + fsync of the active segment.
  Status SyncActive() REQUIRES(mu_);
  // Reads a record's body from its segment file. Safe to call without
  // mu_ once the record is known to be flushed (records are immutable
  // and segments are never deleted).
  Status ReadRecord(const Location& loc, Chunk* chunk) const;
  std::string SegmentPath(uint32_t n) const;

  std::string dir_;
  LogStoreOptions options_;

  mutable Mutex mu_{kRankStore, "log-store"};
  std::unordered_map<Hash, Location, HashHasher> index_ GUARDED_BY(mu_);
  std::FILE* active_ GUARDED_BY(mu_) = nullptr;
  uint32_t active_id_ GUARDED_BY(mu_) = 0;
  uint64_t active_off_ GUARDED_BY(mu_) = 0;

  // Group-commit queue. gc_mu_ only guards the queue bookkeeping below;
  // it is never held across file I/O (CommitGroup runs under mu_ alone).
  Mutex gc_mu_{kRankStoreCombiner, "log-gc"};
  CondVar gc_cv_;
  std::vector<PendingAppend> gc_queue_ GUARDED_BY(gc_mu_);
  uint64_t gc_enqueued_ GUARDED_BY(gc_mu_) = 0;  // records ever enqueued
  uint64_t gc_durable_ GUARDED_BY(gc_mu_) = 0;   // committed (or failed)
  bool gc_combiner_active_ GUARDED_BY(gc_mu_) = false;
  Status gc_error_ GUARDED_BY(gc_mu_);  // sticky: an I/O error fails the store

  // Read-through block cache over the segment files (nullptr when
  // options_.block_cache_bytes == 0). Consulted before the index,
  // filled after disk reads; never populated on the write path, so a
  // bulk load cannot flush it.
  std::unique_ptr<AdmissionChunkCache> block_cache_;

  AtomicChunkStoreStats stats_;
};

// A pool of chunk-store instances partitioned by cid hash — the bottom
// layer of the two-layer partitioning scheme. All instances are accessible
// from any servlet (shared pool semantics). Thread-safe (each instance is).
class ChunkStorePool {
 public:
  explicit ChunkStorePool(size_t n_instances);

  size_t size() const { return stores_.size(); }

  // The instance responsible for `cid`.
  ChunkStore* Route(const Hash& cid) {
    return stores_[PartitionOf(cid)].get();
  }
  const ChunkStore* Route(const Hash& cid) const {
    return stores_[PartitionOf(cid)].get();
  }

  size_t PartitionOf(const Hash& cid) const {
    return static_cast<size_t>(cid.Low64() % stores_.size());
  }

  ChunkStore* instance(size_t i) { return stores_[i].get(); }
  const ChunkStore* instance(size_t i) const { return stores_[i].get(); }

  Status Put(const Hash& cid, const Chunk& chunk) {
    return Route(cid)->Put(cid, chunk);
  }
  Status Get(const Hash& cid, Chunk* chunk) const {
    return Route(cid)->Get(cid, chunk);
  }

  // Batched entry points: group by partition, then issue one sub-batch
  // per instance so each partition's locks are taken once.
  Status PutBatch(const ChunkBatch& batch);
  Status GetBatch(const std::vector<Hash>& cids,
                  std::vector<Chunk>* chunks) const;

  // Aggregate and per-instance stats (Fig 15 storage balance).
  ChunkStoreStats TotalStats() const;
  std::vector<ChunkStoreStats> PerInstanceStats() const;

 private:
  std::vector<std::unique_ptr<MemChunkStore>> stores_;
};

}  // namespace fb

#endif  // FORKBASE_CHUNK_CHUNK_STORE_H_
