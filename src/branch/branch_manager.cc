#include "branch/branch_manager.h"

#include <algorithm>

namespace fb {

namespace {

Status KeyNotFound(const std::string& key) {
  return Status::NotFound("key '" + key + "'");
}

// RAII hold over EVERY stripe, in index order. The lock set is
// data-dependent, so the static analysis cannot see it — the functions
// using it opt out with NO_THREAD_SAFETY_ANALYSIS and rely on the
// runtime rank registry instead (stripes are kSameRankOk precisely for
// this walk).
template <typename StripeVec>
class AllStripesLock {
 public:
  explicit AllStripesLock(const StripeVec& stripes)
      NO_THREAD_SAFETY_ANALYSIS : stripes_(stripes) {
    for (const auto& stripe : stripes_) stripe->mu.Lock();
  }
  ~AllStripesLock() NO_THREAD_SAFETY_ANALYSIS {
    for (auto it = stripes_.rbegin(); it != stripes_.rend(); ++it) {
      (*it)->mu.Unlock();
    }
  }
  AllStripesLock(const AllStripesLock&) = delete;
  AllStripesLock& operator=(const AllStripesLock&) = delete;

 private:
  const StripeVec& stripes_;
};

}  // namespace

BranchManager::BranchManager(size_t n_stripes) {
  if (n_stripes == 0) n_stripes = 1;
  stripes_.reserve(n_stripes);
  for (size_t i = 0; i < n_stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

// ---------------------------------------------------------------------------
// Head reads
// ---------------------------------------------------------------------------

Result<Hash> BranchManager::Head(const std::string& key,
                                 const std::string& branch) const {
  const Stripe& stripe = StripeOf(key);
  MutexLock lock(stripe.mu);
  auto it = stripe.tables.find(key);
  if (it == stripe.tables.end()) return KeyNotFound(key);
  return it->second.Head(branch);
}

Hash BranchManager::HeadOrNull(const std::string& key,
                               const std::string& branch) const {
  const Stripe& stripe = StripeOf(key);
  MutexLock lock(stripe.mu);
  auto it = stripe.tables.find(key);
  if (it == stripe.tables.end() || !it->second.HasBranch(branch)) {
    return Hash::Null();
  }
  return *it->second.Head(branch);
}

// ---------------------------------------------------------------------------
// Head writes
// ---------------------------------------------------------------------------

Status BranchManager::SetHead(const std::string& key,
                              const std::string& branch, const Hash& head,
                              const Hash* guard) {
  Stripe& stripe = StripeOf(key);
  Status s;
  {
    MutexLock lock(stripe.mu);
    s = stripe.tables[key].SetHead(branch, head, guard);
    if (s.ok()) NotifySetHead(key, branch, head);
  }
  if (s.ok()) NotifyHead(key, branch);
  return s;
}

Status BranchManager::CheckGuard(const std::string& key,
                                 const std::string& branch,
                                 const Hash& guard) const {
  if (HeadOrNull(key, branch) != guard) {
    return Status::PreconditionFailed("stale guard for '" + key + "/" +
                                      branch + "'");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Fork / rename / remove
// ---------------------------------------------------------------------------

Status BranchManager::Fork(const std::string& key,
                           const std::string& ref_branch,
                           const std::string& new_branch) {
  Stripe& stripe = StripeOf(key);
  Status s;
  Hash forked_head;
  {
    MutexLock lock(stripe.mu);
    auto it = stripe.tables.find(key);
    if (it == stripe.tables.end()) return KeyNotFound(key);
    s = [&]() -> Status {
      FB_ASSIGN_OR_RETURN(Hash head, it->second.Head(ref_branch));
      if (it->second.HasBranch(new_branch)) {
        return Status::AlreadyExists("branch '" + new_branch + "'");
      }
      forked_head = head;
      return it->second.SetHead(new_branch, head);
    }();
    if (s.ok()) NotifySetHead(key, new_branch, forked_head);
  }
  if (s.ok()) NotifyHead(key, new_branch);
  return s;
}

Status BranchManager::CreateBranchAt(const std::string& key, const Hash& uid,
                                     const std::string& new_branch) {
  Stripe& stripe = StripeOf(key);
  Status s;
  {
    MutexLock lock(stripe.mu);
    BranchTable& table = stripe.tables[key];
    if (table.HasBranch(new_branch)) {
      return Status::AlreadyExists("branch '" + new_branch + "'");
    }
    s = table.SetHead(new_branch, uid);
    if (s.ok()) NotifySetHead(key, new_branch, uid);
  }
  if (s.ok()) NotifyHead(key, new_branch);
  return s;
}

Status BranchManager::Rename(const std::string& key,
                             const std::string& tgt_branch,
                             const std::string& new_branch) {
  Stripe& stripe = StripeOf(key);
  Status s;
  {
    MutexLock lock(stripe.mu);
    auto it = stripe.tables.find(key);
    if (it == stripe.tables.end()) return KeyNotFound(key);
    s = it->second.RenameBranch(tgt_branch, new_branch);
    if (s.ok()) {
      BranchMutation m;
      m.kind = BranchMutation::Kind::kRenameBranch;
      m.key = key;
      m.branch = tgt_branch;
      m.new_branch = new_branch;
      NotifyMutation(std::move(m));
    }
  }
  if (s.ok()) {
    NotifyHead(key, tgt_branch);  // disappeared
    NotifyHead(key, new_branch);  // appeared
  }
  return s;
}

Status BranchManager::Remove(const std::string& key,
                             const std::string& tgt_branch) {
  Stripe& stripe = StripeOf(key);
  Status s;
  {
    MutexLock lock(stripe.mu);
    auto it = stripe.tables.find(key);
    if (it == stripe.tables.end()) return KeyNotFound(key);
    s = it->second.RemoveBranch(tgt_branch);
    if (s.ok()) {
      BranchMutation m;
      m.kind = BranchMutation::Kind::kRemoveBranch;
      m.key = key;
      m.branch = tgt_branch;
      NotifyMutation(std::move(m));
    }
  }
  if (s.ok()) NotifyHead(key, tgt_branch);
  return s;
}

// ---------------------------------------------------------------------------
// Untagged branches
// ---------------------------------------------------------------------------

Status BranchManager::AddUntagged(const std::string& key, const Hash& uid,
                                  const Hash& base) {
  Stripe& stripe = StripeOf(key);
  {
    MutexLock lock(stripe.mu);
    stripe.tables[key].AddUntagged(uid, base);
    BranchMutation m;
    m.kind = BranchMutation::Kind::kAddUntagged;
    m.key = key;
    m.head = uid;
    m.base = base;
    NotifyMutation(std::move(m));
  }
  NotifyHead(key, std::string());
  return Status::OK();
}

Status BranchManager::ReplaceUntagged(const std::string& key,
                                      const std::vector<Hash>& old_heads,
                                      const Hash& merged) {
  Stripe& stripe = StripeOf(key);
  {
    MutexLock lock(stripe.mu);
    stripe.tables[key].ReplaceUntagged(old_heads, merged);
    BranchMutation m;
    m.kind = BranchMutation::Kind::kReplaceUntagged;
    m.key = key;
    m.head = merged;
    m.old_heads = old_heads;
    NotifyMutation(std::move(m));
  }
  NotifyHead(key, std::string());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Views
// ---------------------------------------------------------------------------

std::vector<std::string> BranchManager::Keys() const {
  std::vector<std::string> keys;
  for (const auto& stripe : stripes_) {
    MutexLock lock(stripe->mu);
    for (const auto& [k, t] : stripe->tables) keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

Result<std::vector<std::pair<std::string, Hash>>> BranchManager::TaggedBranches(
    const std::string& key) const {
  const Stripe& stripe = StripeOf(key);
  MutexLock lock(stripe.mu);
  auto it = stripe.tables.find(key);
  if (it == stripe.tables.end()) return KeyNotFound(key);
  return it->second.TaggedBranches();
}

Result<std::vector<Hash>> BranchManager::UntaggedBranches(
    const std::string& key) const {
  const Stripe& stripe = StripeOf(key);
  MutexLock lock(stripe.mu);
  auto it = stripe.tables.find(key);
  if (it == stripe.tables.end()) return KeyNotFound(key);
  return it->second.UntaggedBranches();
}

// ---------------------------------------------------------------------------
// Batched ops
// ---------------------------------------------------------------------------

std::vector<Hash> BranchManager::SnapshotHeads(
    const std::vector<std::string>& keys, const std::string& branch) const {
  std::vector<Hash> heads(keys.size());
  std::vector<std::vector<size_t>> by_stripe(stripes_.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    by_stripe[StripeIndex(keys[i])].push_back(i);
  }
  for (size_t s = 0; s < stripes_.size(); ++s) {
    if (by_stripe[s].empty()) continue;
    const Stripe& stripe = *stripes_[s];
    MutexLock lock(stripe.mu);
    for (size_t i : by_stripe[s]) {
      auto it = stripe.tables.find(keys[i]);
      if (it != stripe.tables.end() && it->second.HasBranch(branch)) {
        heads[i] = *it->second.Head(branch);
      }
    }
  }
  return heads;
}

Status BranchManager::SetHeads(const std::vector<std::string>& keys,
                               const std::string& branch,
                               const std::vector<Hash>& heads) {
  if (keys.size() != heads.size()) {
    return Status::InvalidArgument("SetHeads: keys/heads size mismatch");
  }
  std::vector<std::vector<size_t>> by_stripe(stripes_.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    by_stripe[StripeIndex(keys[i])].push_back(i);
  }
  Status s_all;
  for (size_t s = 0; s < stripes_.size() && s_all.ok(); ++s) {
    if (by_stripe[s].empty()) continue;
    Stripe& stripe = *stripes_[s];
    MutexLock lock(stripe.mu);
    for (size_t i : by_stripe[s]) {
      s_all = stripe.tables[keys[i]].SetHead(branch, heads[i]);
      if (!s_all.ok()) break;
      NotifySetHead(keys[i], branch, heads[i]);
    }
  }
  // One notification per key, after all stripes are released. An error
  // leaves earlier stripes already swung, so notify the whole batch
  // regardless of how far it got: an over-notification is a harmless
  // invalidation, a missed one would leave a stale hint.
  for (const std::string& key : keys) NotifyHead(key, branch);
  return s_all;
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

Bytes BranchManager::ExportState() const NO_THREAD_SAFETY_ANALYSIS {
  // Hold ALL stripe locks (index order, as ImportState does) so the
  // snapshot is a consistent point-in-time cut — a per-stripe walk could
  // capture half of a concurrent SetHeads batch. Keys are assembled in
  // globally sorted order so the encoding is deterministic and
  // byte-compatible with the single-map format.
  AllStripesLock locks(stripes_);

  std::vector<std::pair<std::string, Bytes>> entries;
  for (const auto& stripe : stripes_) {
    for (const auto& [key, table] : stripe->tables) {
      Bytes encoded;
      table.SerializeTo(&encoded);
      entries.emplace_back(key, std::move(encoded));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  Bytes out;
  PutVarint64(&out, entries.size());
  for (const auto& [key, encoded] : entries) {
    PutLengthPrefixed(&out, Slice(key));
    out.insert(out.end(), encoded.begin(), encoded.end());
  }
  return out;
}

Status BranchManager::ImportState(Slice data, const HeadVerifier& verify,
                                  bool lenient,
                                  size_t* dropped) NO_THREAD_SAFETY_ANALYSIS {
  if (dropped != nullptr) *dropped = 0;
  std::map<std::string, BranchTable> restored;
  ByteReader r(data);
  uint64_t n_keys = 0;
  FB_RETURN_NOT_OK(r.ReadVarint64(&n_keys));
  for (uint64_t i = 0; i < n_keys; ++i) {
    Slice key;
    FB_RETURN_NOT_OK(r.ReadLengthPrefixed(&key));
    BranchTable table;
    FB_RETURN_NOT_OK(BranchTable::DeserializeFrom(&r, &table));
    if (verify) {
      Status verified = Status::OK();
      for (const auto& [name, head] : table.TaggedBranches()) {
        verified = verify(head);
        if (!verified.ok()) break;
      }
      // Untagged (fork-on-conflict) heads are part of the key's view
      // too: restoring a dangling one would surface uids that no longer
      // resolve.
      if (verified.ok()) {
        for (const Hash& head : table.UntaggedBranches()) {
          verified = verify(head);
          if (!verified.ok()) break;
        }
      }
      if (!verified.ok()) {
        if (!lenient) return verified;
        if (dropped != nullptr) ++*dropped;
        continue;  // salvage the rest; only this key's view is lost
      }
    }
    restored[key.ToString()] = std::move(table);
  }

  // Install the full view atomically with respect to every per-key op:
  // take all stripe locks (in index order; no other code path holds two)
  // and swap the contents.
  {
    AllStripesLock locks(stripes_);
    // Serialize the installed view for the mutation record BEFORE the
    // tables are moved out of `restored` (same encoding as ExportState;
    // std::map iteration is already globally sorted). Skipped when no
    // observer is attached.
    if (mutation_observer_ != nullptr) {
      BranchMutation m;
      m.kind = BranchMutation::Kind::kImportAll;
      PutVarint64(&m.state, restored.size());
      for (const auto& [key, table] : restored) {
        PutLengthPrefixed(&m.state, Slice(key));
        table.SerializeTo(&m.state);
      }
      for (const auto& stripe : stripes_) stripe->tables.clear();
      for (auto& [key, table] : restored) {
        stripes_[StripeIndex(key)]->tables[key] = std::move(table);
      }
      NotifyMutation(std::move(m));
    } else {
      for (const auto& stripe : stripes_) stripe->tables.clear();
      for (auto& [key, table] : restored) {
        stripes_[StripeIndex(key)]->tables[key] = std::move(table);
      }
    }
  }
  NotifyAll();
  return Status::OK();
}

}  // namespace fb
