// BranchManager: the striped branch-table subsystem behind ForkBase.
//
// The paper's servlet (Section 4.5) serializes all branch-table updates;
// this manager instead stripes the key space over N independent
// (mutex, key -> BranchTable) shards so commits on independent keys
// proceed fully in parallel, while per-key semantics — guarded Put CAS,
// fork-on-conflict UB-table maintenance, fork/rename/remove — stay
// atomic under the owning stripe's lock.
//
// Locking rules:
//  * Every per-key operation takes exactly one stripe lock.
//  * Batched operations (SnapshotHeads/SetHeads) group keys by stripe and
//    take each stripe lock once.
//  * ExportState and ImportState lock all stripes in index order (the
//    only multi-stripe acquisitions, so no lock-order cycle exists) and
//    are therefore consistent point-in-time snapshots.

#ifndef FORKBASE_BRANCH_BRANCH_MANAGER_H_
#define FORKBASE_BRANCH_BRANCH_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "branch/branch_table.h"
#include "util/codec.h"
#include "util/mutex.h"
#include "util/status.h"

namespace fb {

// Notified after a branch-head mutation commits. Fired outside stripe
// locks, so a notification may arrive after a newer mutation's — treat it
// as a hint (invalidate, re-resolve), never as the new head's identity.
// The hot-head value cache uses it for eager invalidation; correctness
// there rests on its serve-time uid guard, not on delivery order.
class HeadObserver {
 public:
  virtual ~HeadObserver() = default;
  // The (key, branch) head moved, appeared, or disappeared. Untagged
  // (UB-table) changes report the empty branch name.
  virtual void OnHeadChange(const std::string& key,
                            const std::string& branch) = 0;
  // The whole branch view was replaced (ImportState).
  virtual void OnAllHeadsChange() = 0;
};

// A single committed branch-table mutation, expressed so a replica can
// re-apply it verbatim: guards and existence checks have already been
// validated on the origin, so application is unconditional.
struct BranchMutation {
  enum class Kind : uint8_t {
    kSetHead = 0,          // key/branch -> head (creates branch on demand)
    kRemoveBranch = 1,     // key/branch removed
    kRenameBranch = 2,     // key: branch -> new_branch
    kAddUntagged = 3,      // key: untagged head (uid) added with base
    kReplaceUntagged = 4,  // key: old_heads collapsed into head
    kImportAll = 5,        // whole branch view replaced; state = exported bytes
  };
  Kind kind = Kind::kSetHead;
  std::string key;
  std::string branch;          // kSetHead/kRemove target; kRename old name
  std::string new_branch;      // kRename new name
  Hash head;                   // new head / untagged uid / merged uid
  Hash base;                   // kAddUntagged base snapshot
  std::vector<Hash> old_heads; // kReplaceUntagged victims
  Bytes state;                 // kImportAll: the installed view, exported
};

// Notified at every successful branch-table mutation, fired INSIDE the
// owning stripe lock (all stripes for kImportAll) so per-key delivery
// order is exactly commit order — the property a replication log needs
// and the one the out-of-lock HeadObserver cannot give. Implementations
// must be quick, must not call back into the manager, and may only
// acquire locks ranked above kRankBranchStripe (e.g. kRankReplLog).
class BranchMutationObserver {
 public:
  virtual ~BranchMutationObserver() = default;
  virtual void OnBranchMutation(const BranchMutation& m) = 0;
};

class BranchManager {
 public:
  static constexpr size_t kDefaultStripes = 16;

  explicit BranchManager(size_t n_stripes = kDefaultStripes);

  BranchManager(const BranchManager&) = delete;
  BranchManager& operator=(const BranchManager&) = delete;

  size_t n_stripes() const { return stripes_.size(); }

  // --- Head reads ---------------------------------------------------------

  // NotFound if the key or the branch does not exist.
  Result<Hash> Head(const std::string& key, const std::string& branch) const;

  // The head, or the null hash when the key/branch is absent (the base
  // snapshot a fork-on-demand Put starts from).
  Hash HeadOrNull(const std::string& key, const std::string& branch) const;

  // --- Head writes --------------------------------------------------------

  // Moves (or creates) a branch head; creates the key's table on demand.
  // With a non-null `guard`, fails with PreconditionFailed unless the
  // current head equals *guard — the guarded-Put CAS, atomic under the
  // stripe lock.
  Status SetHead(const std::string& key, const std::string& branch,
                 const Hash& head, const Hash* guard = nullptr);

  // PreconditionFailed unless the current head (null when absent) equals
  // `guard`. Used as a cheap pre-check before an expensive commit; the
  // authoritative check is the guarded SetHead.
  Status CheckGuard(const std::string& key, const std::string& branch,
                    const Hash& guard) const;

  // --- Fork / rename / remove (M11-M14) ------------------------------------

  // Atomically: resolve ref_branch's head, verify new_branch is absent,
  // create it. NotFound if the key or ref_branch is missing.
  Status Fork(const std::string& key, const std::string& ref_branch,
              const std::string& new_branch);
  // Creates new_branch at `uid` (creating the key's table on demand);
  // AlreadyExists if the branch is taken. Callers validate the uid.
  Status CreateBranchAt(const std::string& key, const Hash& uid,
                        const std::string& new_branch);
  Status Rename(const std::string& key, const std::string& tgt_branch,
                const std::string& new_branch);
  Status Remove(const std::string& key, const std::string& tgt_branch);

  // --- Untagged branches (fork-on-conflict, M4/M7) --------------------------

  Status AddUntagged(const std::string& key, const Hash& uid,
                     const Hash& base);
  Status ReplaceUntagged(const std::string& key,
                         const std::vector<Hash>& old_heads,
                         const Hash& merged);

  // --- Views ----------------------------------------------------------------

  std::vector<std::string> Keys() const;
  Result<std::vector<std::pair<std::string, Hash>>> TaggedBranches(
      const std::string& key) const;
  Result<std::vector<Hash>> UntaggedBranches(const std::string& key) const;

  // --- Batched ops (bulk-load fast path) ------------------------------------

  // Head-or-null for each key on `branch`, taking each stripe lock once.
  std::vector<Hash> SnapshotHeads(const std::vector<std::string>& keys,
                                  const std::string& branch) const;
  // Unconditionally swings keys[i] -> heads[i] on `branch`, grouped by
  // stripe. keys and heads must be the same length.
  Status SetHeads(const std::vector<std::string>& keys,
                  const std::string& branch, const std::vector<Hash>& heads);

  // --- Persistence ----------------------------------------------------------
  //
  // The wire format is identical to the pre-striped encoding (varint key
  // count, then per key: length-prefixed key + BranchTable), with keys in
  // globally sorted order, so snapshots are deterministic and exchangeable
  // across stripe counts.

  Bytes ExportState() const;

  // Replaces the entire branch view. `verify` (optional) is invoked for
  // every tagged and untagged head before anything is installed; by default any
  // failure aborts the import with the existing state untouched. With
  // `lenient`, a key whose heads fail verification is skipped (counted
  // in `*dropped` when given) and the rest of the snapshot still
  // installs — crash recovery uses this so one torn head loses one key,
  // not the whole branch view. Undecodable input always aborts.
  using HeadVerifier = std::function<Status(const Hash&)>;
  Status ImportState(Slice data, const HeadVerifier& verify = nullptr,
                     bool lenient = false, size_t* dropped = nullptr);

  // --- Change notification --------------------------------------------------

  // Installs the (single) head observer. Must be called before concurrent
  // use; the observer must outlive the manager. nullptr detaches.
  void set_head_observer(HeadObserver* observer) { observer_ = observer; }

  // Installs the (single) mutation observer (see BranchMutationObserver
  // for the in-lock delivery contract). Must be called before concurrent
  // use; the observer must outlive the manager. nullptr detaches.
  void set_mutation_observer(BranchMutationObserver* observer) {
    mutation_observer_ = observer;
  }

 private:
  // Observers fire with the stripe lock released — the documented
  // contract (an observer may call back into head resolution). The
  // debug assertion turns that comment into an abort.
  void NotifyHead(const std::string& key, const std::string& branch) const {
    StripeOf(key).mu.AssertNotHeld();
    if (observer_ != nullptr) observer_->OnHeadChange(key, branch);
  }
  void NotifyAll() const {
    for (const auto& stripe : stripes_) stripe->mu.AssertNotHeld();
    if (observer_ != nullptr) observer_->OnAllHeadsChange();
  }

  // In-lock mutation notification (callers hold the owning stripe's mu;
  // the observer contract, not the analysis, enforces that).
  void NotifyMutation(BranchMutation m) const {
    if (mutation_observer_ != nullptr) {
      mutation_observer_->OnBranchMutation(m);
    }
  }
  void NotifySetHead(const std::string& key, const std::string& branch,
                     const Hash& head) const {
    if (mutation_observer_ != nullptr) {
      BranchMutation m;
      m.kind = BranchMutation::Kind::kSetHead;
      m.key = key;
      m.branch = branch;
      m.head = head;
      mutation_observer_->OnBranchMutation(m);
    }
  }

  struct Stripe {
    // Same-rank: ExportState/ImportState walk every stripe in index
    // order, the only multi-stripe acquisitions.
    mutable Mutex mu{kRankBranchStripe, "branch-stripe", kSameRankOk};
    std::map<std::string, BranchTable> tables GUARDED_BY(mu);
  };

  Stripe& StripeOf(const std::string& key) {
    return *stripes_[StripeIndex(key)];
  }
  const Stripe& StripeOf(const std::string& key) const {
    return *stripes_[StripeIndex(key)];
  }
  size_t StripeIndex(const std::string& key) const {
    return std::hash<std::string>{}(key) % stripes_.size();
  }

  std::vector<std::unique_ptr<Stripe>> stripes_;
  HeadObserver* observer_ = nullptr;
  BranchMutationObserver* mutation_observer_ = nullptr;
};

}  // namespace fb

#endif  // FORKBASE_BRANCH_BRANCH_MANAGER_H_
