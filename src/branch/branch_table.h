// Per-key branch table (Section 4.5): TB-table for tagged (named)
// branches and UB-table for untagged branches created by fork-on-conflict
// Puts. The UB-table maintains exactly the leaves of the object
// derivation graph that no tagged branch accounts for.

#ifndef FORKBASE_BRANCH_BRANCH_TABLE_H_
#define FORKBASE_BRANCH_BRANCH_TABLE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "chunk/chunk.h"
#include "util/codec.h"
#include "util/status.h"

namespace fb {

// The branch a Put/Get uses when none is specified.
inline constexpr const char* kDefaultBranch = "master";

class BranchTable {
 public:
  // --- Tagged branches (TB-table) ---------------------------------------

  bool HasBranch(const std::string& branch) const {
    return tagged_.count(branch) > 0;
  }

  Result<Hash> Head(const std::string& branch) const;

  // Moves (or creates) a branch head. With a non-null `guard`, fails with
  // PreconditionFailed unless the current head equals *guard — the
  // guarded Put of Section 4.5.1.
  Status SetHead(const std::string& branch, const Hash& head,
                 const Hash* guard = nullptr);

  Status RenameBranch(const std::string& from, const std::string& to);
  Status RemoveBranch(const std::string& branch);

  std::vector<std::pair<std::string, Hash>> TaggedBranches() const;

  // --- Untagged branches (UB-table) --------------------------------------

  // Registers a new FObject produced by a fork-on-conflict Put: its uid
  // becomes a derivation-graph leaf and its base stops being one.
  void AddUntagged(const Hash& uid, const Hash& base);

  // Replaces a set of untagged heads with their merge result (M7).
  void ReplaceUntagged(const std::vector<Hash>& old_heads, const Hash& merged);

  std::vector<Hash> UntaggedBranches() const;

  bool empty() const { return tagged_.empty() && untagged_.empty(); }

  // --- Persistence --------------------------------------------------------

  // Appends a self-delimiting encoding of this table to `out`.
  void SerializeTo(Bytes* out) const;
  // Reads one table back from `r`.
  static Status DeserializeFrom(ByteReader* r, BranchTable* out);

 private:
  std::map<std::string, Hash> tagged_;
  std::set<Hash> untagged_;
};

}  // namespace fb

#endif  // FORKBASE_BRANCH_BRANCH_TABLE_H_
