// Derivation-graph traversal: Track (history walk) and LCA (least common
// ancestor over the version DAG), used by Merge and by analytics queries
// like blockchain state scans.

#ifndef FORKBASE_BRANCH_HISTORY_H_
#define FORKBASE_BRANCH_HISTORY_H_

#include <vector>

#include "types/fobject.h"

namespace fb {

// Walks backwards from `uid` along the first-base chain and returns the
// FObjects at distance [min_dist, max_dist] (0 = the version itself).
// Stops early at the first version.
Result<std::vector<FObject>> TrackHistory(const ChunkStore& store,
                                          const Hash& uid, uint64_t min_dist,
                                          uint64_t max_dist);

// Least common ancestor of two versions in the derivation DAG, using a
// best-first walk ordered by depth. Returns the null hash when the two
// versions share no ancestor (e.g. different keys).
Result<Hash> FindLca(const ChunkStore& store, const Hash& a, const Hash& b);

}  // namespace fb

#endif  // FORKBASE_BRANCH_HISTORY_H_
