#include "branch/branch_table.h"

namespace fb {

Result<Hash> BranchTable::Head(const std::string& branch) const {
  auto it = tagged_.find(branch);
  if (it == tagged_.end()) {
    return Status::NotFound("branch '" + branch + "'");
  }
  return it->second;
}

Status BranchTable::SetHead(const std::string& branch, const Hash& head,
                            const Hash* guard) {
  if (guard != nullptr) {
    auto it = tagged_.find(branch);
    const Hash current = it == tagged_.end() ? Hash::Null() : it->second;
    if (current != *guard) {
      return Status::PreconditionFailed(
          "branch '" + branch + "' head moved: expected " +
          guard->ToShortHex() + ", found " + current.ToShortHex());
    }
  }
  tagged_[branch] = head;
  return Status::OK();
}

Status BranchTable::RenameBranch(const std::string& from,
                                 const std::string& to) {
  auto it = tagged_.find(from);
  if (it == tagged_.end()) return Status::NotFound("branch '" + from + "'");
  if (tagged_.count(to) > 0) {
    return Status::AlreadyExists("branch '" + to + "'");
  }
  tagged_[to] = it->second;
  tagged_.erase(it);
  return Status::OK();
}

Status BranchTable::RemoveBranch(const std::string& branch) {
  if (tagged_.erase(branch) == 0) {
    return Status::NotFound("branch '" + branch + "'");
  }
  return Status::OK();
}

std::vector<std::pair<std::string, Hash>> BranchTable::TaggedBranches() const {
  return {tagged_.begin(), tagged_.end()};
}

void BranchTable::AddUntagged(const Hash& uid, const Hash& base) {
  // If the base is still a leaf, this Put extends it; otherwise the base
  // was already derived from (concurrent writer) and a fork happens
  // naturally by both uids remaining in the table.
  untagged_.erase(base);
  untagged_.insert(uid);
}

void BranchTable::ReplaceUntagged(const std::vector<Hash>& old_heads,
                                  const Hash& merged) {
  for (const Hash& h : old_heads) untagged_.erase(h);
  untagged_.insert(merged);
}

std::vector<Hash> BranchTable::UntaggedBranches() const {
  return {untagged_.begin(), untagged_.end()};
}

void BranchTable::SerializeTo(Bytes* out) const {
  PutVarint64(out, tagged_.size());
  for (const auto& [name, head] : tagged_) {
    PutLengthPrefixed(out, Slice(name));
    AppendSlice(out, head.slice());
  }
  PutVarint64(out, untagged_.size());
  for (const Hash& h : untagged_) AppendSlice(out, h.slice());
}

Status BranchTable::DeserializeFrom(ByteReader* r, BranchTable* out) {
  *out = BranchTable();
  uint64_t n_tagged = 0;
  FB_RETURN_NOT_OK(r->ReadVarint64(&n_tagged));
  for (uint64_t i = 0; i < n_tagged; ++i) {
    Slice name, head;
    FB_RETURN_NOT_OK(r->ReadLengthPrefixed(&name));
    FB_RETURN_NOT_OK(r->ReadRaw(Hash::kSize, &head));
    Sha256::Digest d;
    std::copy(head.begin(), head.end(), d.begin());
    out->tagged_[name.ToString()] = Hash(d);
  }
  uint64_t n_untagged = 0;
  FB_RETURN_NOT_OK(r->ReadVarint64(&n_untagged));
  for (uint64_t i = 0; i < n_untagged; ++i) {
    Slice h;
    FB_RETURN_NOT_OK(r->ReadRaw(Hash::kSize, &h));
    Sha256::Digest d;
    std::copy(h.begin(), h.end(), d.begin());
    out->untagged_.insert(Hash(d));
  }
  return Status::OK();
}

}  // namespace fb
