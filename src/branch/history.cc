#include "branch/history.h"

#include <map>
#include <queue>
#include <set>

namespace fb {

Result<std::vector<FObject>> TrackHistory(const ChunkStore& store,
                                          const Hash& uid, uint64_t min_dist,
                                          uint64_t max_dist) {
  std::vector<FObject> out;
  Hash cur = uid;
  for (uint64_t dist = 0; dist <= max_dist; ++dist) {
    FB_ASSIGN_OR_RETURN_IMPL(_o, FObject obj, FObject::Load(store, cur));
    const bool at_root = obj.bases().empty();
    const Hash next = at_root ? Hash::Null() : obj.bases().front();
    if (dist >= min_dist) out.push_back(std::move(obj));
    if (at_root) break;
    cur = next;
  }
  return out;
}

Result<Hash> FindLca(const ChunkStore& store, const Hash& a, const Hash& b) {
  if (a == b) return a;

  // Best-first walk from both versions, always expanding the deepest
  // frontier node. A node reached from both sides is the LCA.
  struct Item {
    uint64_t depth;
    Hash uid;
    uint8_t mask;  // 1 = reached from a, 2 = from b
    bool operator<(const Item& o) const { return depth < o.depth; }
  };
  std::priority_queue<Item> frontier;
  std::map<Hash, uint8_t> seen;

  auto push = [&](const Hash& uid, uint8_t mask) -> Status {
    FB_ASSIGN_OR_RETURN(FObject obj, FObject::Load(store, uid));
    frontier.push(Item{obj.depth(), uid, mask});
    return Status::OK();
  };
  FB_RETURN_NOT_OK(push(a, 1));
  FB_RETURN_NOT_OK(push(b, 2));

  while (!frontier.empty()) {
    const Item item = frontier.top();
    frontier.pop();
    uint8_t& mask = seen[item.uid];
    const uint8_t combined = mask | item.mask;
    if (combined == 3) return item.uid;
    if (mask == combined) continue;  // already expanded with this mask
    mask = combined;

    FB_ASSIGN_OR_RETURN(FObject obj, FObject::Load(store, item.uid));
    for (const Hash& base : obj.bases()) {
      FB_RETURN_NOT_OK(push(base, combined));
    }
  }
  return Hash::Null();
}

}  // namespace fb
